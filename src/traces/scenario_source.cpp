#include "traces/scenario_source.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <mutex>
#include <sstream>

#include "archive/archive_source.h"
#include "support/assert.h"
#include "support/rng.h"

namespace aheft::traces {

namespace {

/// Emits `count` workflow-arrival records with the given gaps: arrival k
/// lands at the sum of gaps[0..k) (workflow 0 at t = 0).
void emit_job_arrivals(CompiledScenario& scenario, std::size_t count,
                       const std::vector<sim::Time>& gaps) {
  sim::Time at = sim::kTimeZero;
  for (std::size_t k = 0; k < count; ++k) {
    if (k > 0) {
      at += gaps[k - 1];
    }
    scenario.job_arrivals.push_back(JobArrivalRecord{
        static_cast<std::uint32_t>(k), at, "wf" + std::to_string(k)});
  }
}

// ---------------------------------------------------------- synthetic --

/// Wraps the paper's fixed-interval arrival law (Table 2/5).
class SyntheticSource final : public ScenarioSource {
 public:
  [[nodiscard]] std::string name() const override { return "synthetic"; }
  [[nodiscard]] std::string description() const override {
    return "fixed-interval resource arrivals (paper Table 2/5), no load";
  }

  [[nodiscard]] CompiledScenario build(
      const ScenarioRequest& request) const override {
    workloads::validate(request.dynamics);
    AHEFT_REQUIRE(request.stream.jobs == 0 ||
                      request.stream.interarrival_mean > 0.0,
                  "stream interarrival mean must be positive");
    CompiledScenario scenario;
    scenario.pool =
        workloads::build_dynamic_pool(request.dynamics, request.horizon);
    // Fixed-interval workflow arrivals, matching the backend's
    // fixed-interval resource law.
    const std::vector<sim::Time> gaps(
        request.stream.jobs > 0 ? request.stream.jobs - 1 : 0,
        request.stream.interarrival_mean);
    emit_job_arrivals(scenario, request.stream.jobs, gaps);
    scenario.events = derive_events(scenario.pool, scenario.load);
    return scenario;
  }
};

// -------------------------------------------------------------- trace --

/// Replays a recorded trace file (or inline text) through the compiler.
class TraceSource final : public ScenarioSource {
 public:
  [[nodiscard]] std::string name() const override { return "trace"; }
  [[nodiscard]] std::string description() const override {
    return "replay of a recorded grid trace (trace_path or trace_text)";
  }
  [[nodiscard]] bool horizon_sensitive() const override { return false; }

  [[nodiscard]] CompiledScenario build(
      const ScenarioRequest& request) const override {
    if (request.trace_text.empty() && request.trace_path.empty()) {
      throw std::invalid_argument(
          "trace scenario source needs trace_path or trace_text");
    }
    if (!request.trace_text.empty()) {
      return TraceCompiler().compile(read_trace_string(request.trace_text));
    }
    // Sweeps run hundreds of cases against the same file from worker
    // threads; parse each path once for the process lifetime. (A file
    // rewritten in place mid-process keeps serving the first parse.)
    // Entries are never erased and std::map nodes are stable, so only
    // the lookup needs the lock — per-case compilation runs outside it.
    const GridTrace* trace = nullptr;
    {
      const std::lock_guard<std::mutex> lock(cache_mutex_);
      auto it = cache_.find(request.trace_path);
      if (it == cache_.end()) {
        it = cache_.emplace(request.trace_path,
                            read_trace_file(request.trace_path))
                 .first;
      }
      trace = &it->second;
    }
    return TraceCompiler().compile(*trace);
  }

 private:
  mutable std::mutex cache_mutex_;
  mutable std::map<std::string, GridTrace, std::less<>> cache_;
};

// ------------------------------------------------------------- bursty --

/// MMPP-style on/off volatility: the grid alternates between calm and
/// burst phases with exponentially distributed durations. Resources
/// arrive as a Poisson process whose rate depends on the phase, and each
/// burst puts a load spike on a random subset of the machines live at
/// its onset. Departures are never generated (the paper's §4.1
/// assumption 3), so bursty scenarios compose safely with load scaling.
class BurstySource final : public ScenarioSource {
 public:
  [[nodiscard]] std::string name() const override { return "bursty"; }
  [[nodiscard]] std::string description() const override {
    return "MMPP-style on/off volatility: bursty arrivals and load spikes";
  }

  [[nodiscard]] CompiledScenario build(
      const ScenarioRequest& request) const override {
    const BurstyParams& params = request.bursty;
    AHEFT_REQUIRE(request.dynamics.initial > 0,
                  "bursty scenario needs at least one initial resource");
    AHEFT_REQUIRE(params.mean_calm > 0.0 && params.mean_burst > 0.0,
                  "bursty phase durations must be positive");
    AHEFT_REQUIRE(
        params.calm_arrival_mean > 0.0 && params.burst_arrival_mean > 0.0,
        "bursty arrival means must be positive");
    AHEFT_REQUIRE(params.spike_fraction >= 0.0 && params.spike_fraction <= 1.0,
                  "spike_fraction must lie in [0, 1]");
    AHEFT_REQUIRE(params.spike_min > 0.0 &&
                      params.spike_max >= params.spike_min,
                  "spike multipliers need 0 < spike_min <= spike_max");
    AHEFT_REQUIRE(
        params.failure_fraction >= 0.0 && params.failure_fraction <= 1.0,
        "failure_fraction must lie in [0, 1]");
    AHEFT_REQUIRE(params.repair_mean > 0.0,
                  "repair_mean must be positive");
    AHEFT_REQUIRE(request.stream.jobs == 0 ||
                      request.stream.interarrival_mean > 0.0,
                  "stream interarrival mean must be positive");

    CompiledScenario scenario;
    for (std::size_t i = 0; i < request.dynamics.initial; ++i) {
      scenario.pool.add(grid::Resource{.name = "", .arrival = sim::kTimeZero});
    }

    RngStream phases = RngStream(request.seed).child("phases");
    RngStream arrivals = RngStream(request.seed).child("arrivals");
    RngStream spikes = RngStream(request.seed).child("spikes");
    RngStream failures = RngStream(request.seed).child("failures");

    sim::Time t = sim::kTimeZero;
    bool burst = false;
    while (t < request.horizon) {
      const double mean = burst ? params.mean_burst : params.mean_calm;
      const sim::Time phase_end =
          std::min(t + phases.exponential(mean), request.horizon);

      if (burst) {
        std::vector<grid::ResourceId> live;
        for (const grid::Resource& r : scenario.pool.all()) {
          if (r.available_at(t)) {
            live.push_back(r.id);
          }
        }

        // Failure burst: a correlated subset of the live machines departs
        // together at the burst onset; each is replaced by a fresh
        // resource once repaired. At least one live machine survives so
        // the grid never empties.
        if (params.failure_fraction > 0.0 && live.size() > 1) {
          std::vector<grid::ResourceId> victims = live;
          failures.shuffle(victims);
          const auto failing = std::min(
              static_cast<std::size_t>(std::lround(
                  params.failure_fraction *
                  static_cast<double>(victims.size()))),
              victims.size() - 1);
          for (std::size_t i = 0; i < failing; ++i) {
            scenario.pool.set_departure(victims[i], t);
            scenario.pool.add(grid::Resource{
                .name = "",
                .arrival = t + failures.exponential(params.repair_mean)});
            live.erase(std::find(live.begin(), live.end(), victims[i]));
          }
        }

        // Spike a random subset of the machines that survived the onset.
        spikes.shuffle(live);
        const auto count = static_cast<std::size_t>(std::lround(
            params.spike_fraction * static_cast<double>(live.size())));
        for (std::size_t i = 0; i < std::min(count, live.size()); ++i) {
          scenario.load.add(live[i], t, phase_end,
                            spikes.uniform(params.spike_min,
                                           params.spike_max));
        }
      }

      // Poisson resource arrivals at the phase's rate.
      const double arrival_mean =
          burst ? params.burst_arrival_mean : params.calm_arrival_mean;
      sim::Time at = t + arrivals.exponential(arrival_mean);
      while (at < phase_end) {
        scenario.pool.add(grid::Resource{.name = "", .arrival = at});
        at += arrivals.exponential(arrival_mean);
      }

      t = phase_end;
      burst = !burst;
    }

    // Workflow arrivals: workflow 0 at t = 0, exponential gaps after it.
    if (request.stream.jobs > 0) {
      RngStream jobs = RngStream(request.seed).child("jobs");
      std::vector<sim::Time> gaps(request.stream.jobs - 1);
      for (sim::Time& gap : gaps) {
        gap = jobs.exponential(request.stream.interarrival_mean);
      }
      emit_job_arrivals(scenario, request.stream.jobs, gaps);
    }

    scenario.load.sort();
    scenario.events = derive_events(scenario.pool, scenario.load);
    return scenario;
  }
};

}  // namespace

struct ScenarioSourceRegistry::Impl {
  mutable std::mutex mutex;
  std::map<std::string, std::unique_ptr<ScenarioSource>, std::less<>>
      sources;
};

ScenarioSourceRegistry::ScenarioSourceRegistry()
    : impl_(std::make_shared<Impl>()) {
  register_source(std::make_unique<SyntheticSource>());
  register_source(std::make_unique<TraceSource>());
  register_source(std::make_unique<BurstySource>());
  // The archive backends live in src/archive; explicit registration here
  // (rather than static initializers in their own translation unit, which
  // a static library would drop) guarantees they exist in every binary.
  archive::register_archive_sources(*this);
}

ScenarioSourceRegistry& ScenarioSourceRegistry::instance() {
  static ScenarioSourceRegistry registry;
  return registry;
}

void ScenarioSourceRegistry::register_source(
    std::unique_ptr<ScenarioSource> source) {
  AHEFT_REQUIRE(source != nullptr, "cannot register a null scenario source");
  AHEFT_REQUIRE(!source->name().empty(), "scenario source needs a name");
  const std::lock_guard<std::mutex> lock(impl_->mutex);
  impl_->sources[source->name()] = std::move(source);
}

const ScenarioSource* ScenarioSourceRegistry::find(
    std::string_view name) const {
  const std::lock_guard<std::mutex> lock(impl_->mutex);
  const auto it = impl_->sources.find(name);
  return it == impl_->sources.end() ? nullptr : it->second.get();
}

const ScenarioSource& ScenarioSourceRegistry::require(
    std::string_view name) const {
  const ScenarioSource* source = find(name);
  if (source == nullptr) {
    std::ostringstream os;
    os << "unknown scenario source '" << name << "' (known:";
    for (const std::string& known : names()) {
      os << ' ' << known;
    }
    os << ')';
    throw std::invalid_argument(os.str());
  }
  return *source;
}

std::vector<std::string> ScenarioSourceRegistry::names() const {
  const std::lock_guard<std::mutex> lock(impl_->mutex);
  std::vector<std::string> out;
  out.reserve(impl_->sources.size());
  for (const auto& [name, source] : impl_->sources) {
    out.push_back(name);
  }
  return out;  // std::map iteration is already sorted
}

CompiledScenario build_scenario(std::string_view source,
                                const ScenarioRequest& request) {
  return ScenarioSourceRegistry::instance().require(source).build(request);
}

}  // namespace aheft::traces
