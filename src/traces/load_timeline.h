// Piecewise-constant per-resource load multipliers.
//
// The timeline is the in-memory form of a trace's `load` records and the
// volatility generators' spike output; it implements grid::LoadProfile so
// the execution engine can stretch realized run times without the planner
// (which schedules against nominal estimates) knowing.
#ifndef AHEFT_TRACES_LOAD_TIMELINE_H_
#define AHEFT_TRACES_LOAD_TIMELINE_H_

#include <vector>

#include "grid/load_profile.h"
#include "grid/resource.h"
#include "sim/time.h"

namespace aheft::traces {

/// One half-open segment [start, end) of elevated (or reduced) load.
struct LoadSegment {
  grid::ResourceId resource = 0;
  sim::Time start = sim::kTimeZero;
  sim::Time end = sim::kTimeInfinity;
  double multiplier = 1.0;

  bool operator==(const LoadSegment&) const = default;
};

class LoadTimeline final : public grid::LoadProfile {
 public:
  /// Appends a segment; multiplier must be finite and > 0, end > start.
  /// Overlapping segments on the same resource compose multiplicatively.
  void add(grid::ResourceId resource, sim::Time start, sim::Time end,
           double multiplier);

  /// Product of every segment covering (resource, t); 1.0 when none does.
  [[nodiscard]] double factor(grid::ResourceId resource,
                              sim::Time t) const override;

  [[nodiscard]] bool empty() const noexcept { return segments_.empty(); }
  [[nodiscard]] const std::vector<LoadSegment>& segments() const noexcept {
    return segments_;
  }

  /// Canonical ordering (resource, start, end, multiplier); recording and
  /// equality checks normalize through this.
  void sort();

  bool operator==(const LoadTimeline& other) const {
    return segments_ == other.segments_;
  }

 private:
  std::vector<LoadSegment> segments_;
};

}  // namespace aheft::traces

#endif  // AHEFT_TRACES_LOAD_TIMELINE_H_
