// Pluggable scenario sources: named backends that turn a ScenarioRequest
// into a CompiledScenario (pool + load + event stream).
//
// Modeled on the codes-workload generator-method registry: simulations
// select an environment by name, new backends register themselves
// without the consumers changing. Built-ins:
//
//   synthetic  the paper's Table 2/5 resource dynamics — fixed-interval
//              arrivals via workloads::build_dynamic_pool, no load
//   trace      file- or text-driven replay through the TraceCompiler
//   bursty     MMPP-style on/off volatility: calm/burst phases with
//              phase-dependent Poisson resource arrivals and load spikes
//              on a random subset of machines during bursts
//   archive    replay of a real SWF/GWA workload archive (src/archive)
//   fitted     statistical generator fitted to an SWF/GWA archive:
//              diurnal arrivals, heavy-tailed runtimes, task bags
#ifndef AHEFT_TRACES_SCENARIO_SOURCE_H_
#define AHEFT_TRACES_SCENARIO_SOURCE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "traces/compiler.h"
#include "workloads/scenario.h"

namespace aheft::traces {

/// Knobs of the `bursty` backend (means are of exponential draws).
struct BurstyParams {
  double mean_calm = 600.0;         ///< calm-phase duration
  double mean_burst = 150.0;        ///< burst-phase duration
  double calm_arrival_mean = 1200.0;  ///< resource inter-arrival, calm
  double burst_arrival_mean = 40.0;   ///< resource inter-arrival, burst
  /// Fraction of the machines live at burst onset that get a load spike.
  double spike_fraction = 0.4;
  double spike_min = 1.5;  ///< spike multiplier lower bound
  double spike_max = 3.5;  ///< spike multiplier upper bound
  /// Failure bursts: fraction of the machines live at burst onset that
  /// depart together (correlated failures). At least one live machine
  /// always survives. 0 disables failures (the paper's assumption 3).
  /// Note that only the adaptive strategy reschedules around departures;
  /// static plans caught on a failed machine cannot finish.
  double failure_fraction = 0.0;
  /// Mean repair time: each failed machine is replaced by a fresh
  /// resource joining repair-time units after the failure.
  double repair_mean = 300.0;
};

/// Knobs of the `archive` (SWF/GWA replay) and `fitted` (statistical
/// generator) backends implemented in src/archive. Plain values only, so
/// the traces layer needs no archive headers.
struct ArchiveParams {
  std::string path;  ///< SWF/GWA log file to load
  std::string text;  ///< inline SWF text; wins over path when non-empty
  /// Pool size; 0 derives it from the log (MaxNodes, then MaxProcs, then
  /// the peak concurrent processor demand), capped by max_machines.
  std::size_t machines = 0;
  std::size_t max_machines = 64;
  /// Archive seconds are multiplied by this on the way into the
  /// simulation clock (compresses months-long logs into solvable
  /// horizons). Applies to arrivals and load segments alike.
  double time_scale = 1.0;
  /// `archive` replay: cap on emitted workflow arrivals (0 = stream.jobs
  /// when set, else every usable job).
  std::size_t max_jobs = 0;
  /// Use failed/cancelled jobs too, not just completed ones.
  bool include_failed = false;
  /// `fitted`: submissions by one user at most this many archive seconds
  /// apart form one bag of tasks.
  double bag_window = 120.0;
  /// Load amplitude: utilization u (replay) or relative arrival rate
  /// (fitted) slows machines by a factor 1 + background_load * u.
  /// 0 disables background load.
  double background_load = 0.5;
};

/// Workload-stream knobs consumed by the generator backends: emit this
/// many `job` arrival records into CompiledScenario::job_arrivals
/// (0 = single-DAG scenario). The `trace` backend carries its own
/// records and ignores these.
struct StreamParams {
  std::size_t jobs = 0;
  /// Mean gap between consecutive workflow arrivals (the first arrives
  /// at t = 0). `synthetic` spaces arrivals exactly this far apart;
  /// `bursty` draws exponential gaps.
  double interarrival_mean = 400.0;
};

/// Everything a backend may consume; each one reads the fields it needs
/// and ignores the rest (the codes-workload "params" convention).
struct ScenarioRequest {
  /// Initial pool size and synthetic arrival law.
  workloads::ResourceDynamics dynamics;
  /// Generate environment dynamics up to this time; 0 yields the t = 0
  /// pool alone (used by sizing pre-passes). Ignored by `trace`.
  sim::Time horizon = sim::kTimeZero;
  /// Generator entropy; same (seed, horizon) always reproduces the same
  /// scenario. Ignored by `trace`.
  std::uint64_t seed = 0;
  /// `trace` backend: file to replay, or inline text when non-empty.
  std::string trace_path;
  std::string trace_text;
  BurstyParams bursty;
  /// `archive` / `fitted` backends: which log to replay or fit.
  ArchiveParams archive;
  /// Workflow-arrival stream emitted by the generator backends.
  StreamParams stream;
};

class ScenarioSource {
 public:
  virtual ~ScenarioSource() = default;

  [[nodiscard]] virtual std::string name() const = 0;
  [[nodiscard]] virtual std::string description() const = 0;
  /// Builds the scenario; throws std::invalid_argument on a bad request.
  [[nodiscard]] virtual CompiledScenario build(
      const ScenarioRequest& request) const = 0;
  /// Whether the scenario depends on request.horizon. Replay-style
  /// backends carrying a fixed timeline return false, which lets
  /// two-pass consumers (horizon sizing, then full build) reuse the
  /// first build instead of re-reading the source.
  [[nodiscard]] virtual bool horizon_sensitive() const { return true; }
};

/// Process-wide, thread-safe source registry.
class ScenarioSourceRegistry {
 public:
  /// The global registry, pre-populated with the built-in backends.
  static ScenarioSourceRegistry& instance();

  /// Registers a backend; a source with the same name is replaced.
  void register_source(std::unique_ptr<ScenarioSource> source);

  /// Looks a backend up; nullptr when unknown. The pointer stays valid
  /// for the registry's lifetime.
  [[nodiscard]] const ScenarioSource* find(std::string_view name) const;

  /// Like find(), but throws std::invalid_argument listing the known
  /// backends when the name is unknown.
  [[nodiscard]] const ScenarioSource& require(std::string_view name) const;

  [[nodiscard]] std::vector<std::string> names() const;  ///< sorted

 private:
  ScenarioSourceRegistry();

  struct Impl;
  std::shared_ptr<Impl> impl_;
};

/// Convenience: resolves `source` in the global registry and builds the
/// scenario; throws std::invalid_argument listing the known backends
/// when the name is unknown.
[[nodiscard]] CompiledScenario build_scenario(std::string_view source,
                                              const ScenarioRequest& request);

}  // namespace aheft::traces

#endif  // AHEFT_TRACES_SCENARIO_SOURCE_H_
