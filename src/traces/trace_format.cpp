#include "traces/trace_format.h"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

namespace aheft::traces {

namespace {

constexpr std::string_view kMagic = "gridtrace";
constexpr std::string_view kVersion = "v1";

[[noreturn]] void fail(std::size_t line, const std::string& message) {
  throw TraceParseError(line, message);
}

/// Splits a line into whitespace-separated tokens, dropping '#' comments.
std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream stream(line);
  std::string token;
  while (stream >> token) {
    if (token.front() == '#') {
      break;
    }
    tokens.push_back(std::move(token));
  }
  return tokens;
}

/// Locale-independent double parse accepting "inf"; rejects trailing junk.
double parse_time(std::size_t line, const std::string& token,
                  const char* field) {
  double value = 0.0;
  const char* begin = token.data();
  const char* end = begin + token.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc() || ptr != end) {
    fail(line, std::string("malformed ") + field + " '" + token + "'");
  }
  if (std::isnan(value)) {
    fail(line, std::string(field) + " must not be NaN");
  }
  return value;
}

std::uint32_t parse_id(std::size_t line, const std::string& token,
                       const char* field) {
  std::uint32_t value = 0;
  const char* begin = token.data();
  const char* end = begin + token.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc() || ptr != end) {
    fail(line, std::string("malformed ") + field + " '" + token + "'");
  }
  return value;
}

void expect_tokens(std::size_t line, const std::vector<std::string>& tokens,
                   std::size_t count, const char* grammar) {
  if (tokens.size() != count) {
    std::ostringstream os;
    os << "expected '" << grammar << "' (" << count << " fields), got "
       << tokens.size();
    fail(line, os.str());
  }
}

/// Round-trip-exact double formatting; infinities become "inf".
std::string format_time(double value) {
  if (std::isinf(value)) {
    return value > 0 ? "inf" : "-inf";
  }
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

std::string sanitize_name(std::string name) {
  for (char& c : name) {
    // Names are single tokens on disk: whitespace of any kind (including
    // newlines, which would split the record) and comment markers must
    // not survive serialization.
    if (static_cast<unsigned char>(c) <= ' ' || c == '#') {
      c = '_';
    }
  }
  return name.empty() ? "_" : name;
}

}  // namespace

TraceParseError::TraceParseError(std::size_t line, const std::string& message)
    : std::runtime_error("trace line " + std::to_string(line) + ": " +
                         message),
      line_(line) {}

GridTrace read_trace(std::istream& in) {
  GridTrace trace;
  trace.name.clear();
  bool saw_header = false;
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    const std::vector<std::string> tokens = tokenize(line);
    if (tokens.empty()) {
      continue;
    }
    const std::string& directive = tokens[0];

    if (!saw_header) {
      if (directive != kMagic) {
        fail(line_number, "expected 'gridtrace v1 <name>' header, got '" +
                              directive + "'");
      }
      expect_tokens(line_number, tokens, 3, "gridtrace v1 <name>");
      if (tokens[1] != kVersion) {
        fail(line_number, "unsupported trace version '" + tokens[1] +
                              "' (this reader understands v1)");
      }
      trace.name = tokens[2];
      saw_header = true;
      continue;
    }

    if (directive == "resource") {
      expect_tokens(line_number, tokens, 5,
                    "resource <id> <arrival> <departure> <name>");
      ResourceRecord record;
      record.id = parse_id(line_number, tokens[1], "resource id");
      record.arrival = parse_time(line_number, tokens[2], "arrival");
      record.departure = parse_time(line_number, tokens[3], "departure");
      record.name = tokens[4];
      if (record.id != trace.resources.size()) {
        fail(line_number,
             "resource ids must be dense and ascending from 0 (expected " +
                 std::to_string(trace.resources.size()) + ", got " +
                 std::to_string(record.id) + ")");
      }
      if (record.arrival < 0.0) {
        fail(line_number, "arrival must be non-negative");
      }
      if (!(record.departure > record.arrival)) {
        fail(line_number, "departure must be later than arrival");
      }
      trace.resources.push_back(std::move(record));
    } else if (directive == "load") {
      expect_tokens(line_number, tokens, 5,
                    "load <resource-id> <start> <end> <multiplier>");
      LoadRecord record;
      record.resource = parse_id(line_number, tokens[1], "resource id");
      record.start = parse_time(line_number, tokens[2], "start");
      record.end = parse_time(line_number, tokens[3], "end");
      record.multiplier = parse_time(line_number, tokens[4], "multiplier");
      if (record.resource >= trace.resources.size()) {
        fail(line_number, "load references undeclared resource " +
                              std::to_string(record.resource) +
                              " (declare resources before load records)");
      }
      if (record.start < 0.0) {
        fail(line_number, "load start must be non-negative");
      }
      if (!(record.end > record.start)) {
        fail(line_number, "load segment must end after it starts");
      }
      if (!(record.multiplier > 0.0) || std::isinf(record.multiplier)) {
        fail(line_number, "load multiplier must be finite and > 0");
      }
      trace.load.push_back(record);
    } else if (directive == "job") {
      expect_tokens(line_number, tokens, 4, "job <id> <arrival> <name>");
      JobArrivalRecord record;
      record.job = parse_id(line_number, tokens[1], "job id");
      record.arrival = parse_time(line_number, tokens[2], "arrival");
      record.name = tokens[3];
      if (record.job != trace.jobs.size()) {
        fail(line_number,
             "job ids must be dense and ascending from 0 (expected " +
                 std::to_string(trace.jobs.size()) + ", got " +
                 std::to_string(record.job) + ")");
      }
      if (record.arrival < 0.0) {
        fail(line_number, "job arrival must be non-negative");
      }
      trace.jobs.push_back(std::move(record));
    } else {
      fail(line_number, "unknown directive '" + directive + "'");
    }
  }
  if (!saw_header) {
    fail(line_number == 0 ? 1 : line_number,
         "empty trace: missing 'gridtrace v1 <name>' header");
  }
  return trace;
}

GridTrace read_trace_string(std::string_view text) {
  std::istringstream in{std::string(text)};
  return read_trace(in);
}

GridTrace read_trace_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("cannot open trace file '" + path + "'");
  }
  return read_trace(in);
}

void write_trace(std::ostream& out, const GridTrace& trace) {
  out << kMagic << ' ' << kVersion << ' ' << sanitize_name(trace.name)
      << '\n';
  for (const ResourceRecord& r : trace.resources) {
    out << "resource " << r.id << ' ' << format_time(r.arrival) << ' '
        << format_time(r.departure) << ' ' << sanitize_name(r.name) << '\n';
  }
  for (const LoadRecord& l : trace.load) {
    out << "load " << l.resource << ' ' << format_time(l.start) << ' '
        << format_time(l.end) << ' ' << format_time(l.multiplier) << '\n';
  }
  for (const JobArrivalRecord& j : trace.jobs) {
    out << "job " << j.job << ' ' << format_time(j.arrival) << ' '
        << sanitize_name(j.name) << '\n';
  }
}

std::string write_trace_string(const GridTrace& trace) {
  std::ostringstream out;
  write_trace(out, trace);
  return out.str();
}

void write_trace_file(const std::string& path, const GridTrace& trace) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("cannot create trace file '" + path + "'");
  }
  write_trace(out, trace);
  if (!out.flush()) {
    throw std::runtime_error("failed writing trace file '" + path + "'");
  }
}

}  // namespace aheft::traces
