// TraceCompiler: turns a parsed GridTrace into the inputs the rest of the
// library consumes — a grid::ResourcePool availability timeline, a
// LoadTimeline of effective cost scaling for the execution engine, and
// the derived grid::GridEvent stream (ResourceAdded/Removed plus
// load-driven PerformanceVariance notifications).
//
// record_scenario() is the inverse: it snapshots a pool + load timeline
// back into a writable trace, so any simulated environment — including
// one mutated mid-setup (injected departures, generated volatility) —
// can be persisted and replayed bit-identically.
#ifndef AHEFT_TRACES_COMPILER_H_
#define AHEFT_TRACES_COMPILER_H_

#include <string>
#include <vector>

#include "grid/events.h"
#include "grid/resource_pool.h"
#include "traces/load_timeline.h"
#include "traces/trace_format.h"

namespace aheft::traces {

/// A trace compiled into live simulation inputs.
struct CompiledScenario {
  grid::ResourcePool pool;
  LoadTimeline load;
  /// Environment feed: pool changes and load-driven variance, sorted by
  /// (time, kind, resource). Replays compare this sequence verbatim.
  std::vector<grid::GridEvent> events;
  /// Workload arrival records carried through from the trace (empty for
  /// single-DAG scenarios, where every job is present at t = 0).
  std::vector<JobArrivalRecord> job_arrivals;
};

class TraceCompiler {
 public:
  struct Options {
    /// Events later than this are dropped from the compiled stream (the
    /// pool itself keeps its full timeline).
    sim::Time event_horizon = sim::kTimeInfinity;
  };

  TraceCompiler() = default;
  explicit TraceCompiler(Options options) : options_(options) {}

  /// Compiles a parsed trace. The parser already enforced the per-record
  /// invariants, so this only has to assemble the runtime structures.
  [[nodiscard]] CompiledScenario compile(const GridTrace& trace) const;

 private:
  Options options_;
};

/// Derives the full event stream of a scenario: pool changes plus one
/// PerformanceVarianceEvent per load-segment onset (job = kInvalidJob,
/// estimated = 1, actual = segment multiplier).
[[nodiscard]] std::vector<grid::GridEvent> derive_events(
    const grid::ResourcePool& pool, const LoadTimeline& load,
    sim::Time horizon = sim::kTimeInfinity);

/// Snapshots a live scenario into a writable trace (load segments are
/// emitted in canonical order). compile(record_scenario(s)) reproduces
/// the same pool windows, load timeline, and event stream.
[[nodiscard]] GridTrace record_scenario(
    const grid::ResourcePool& pool, const LoadTimeline& load,
    std::string name, std::vector<JobArrivalRecord> jobs = {});
[[nodiscard]] GridTrace record_scenario(const CompiledScenario& scenario,
                                        std::string name);

}  // namespace aheft::traces

#endif  // AHEFT_TRACES_COMPILER_H_
