#!/usr/bin/env python3
"""Gate the pump-scaling bench against the committed baseline.

Usage: check_pump_baseline.py BASELINE.json CURRENT.json [FACTOR]

Rows are matched by their full label set; a row regresses when its
micros_per_event exceeds FACTOR (default 3.0) times the baseline's.
Rows without a micros_per_event metric (e.g. the sparse-stream epoch
rows) and rows absent from the baseline (new axes) are ignored, so
extending the bench never trips the gate — only slowing down existing
configurations does.

Exit status: 0 clean, 1 on any regression, 2 when nothing matched
(wrong file pair or a label-schema change that must be reflected by
regenerating the baseline).
"""
import json
import sys


def rows_by_labels(path):
    with open(path) as handle:
        report = json.load(handle)
    return {tuple(sorted(r["labels"].items())): r["metrics"]
            for r in report["rows"]}


def main(argv):
    if len(argv) not in (3, 4):
        print(__doc__.strip(), file=sys.stderr)
        return 2
    factor = float(argv[3]) if len(argv) == 4 else 3.0
    baseline = rows_by_labels(argv[1])
    current = rows_by_labels(argv[2])

    matched = 0
    regressions = []
    for key, metrics in current.items():
        reference = baseline.get(key)
        if reference is None:
            continue
        now = metrics.get("micros_per_event")
        then = reference.get("micros_per_event")
        if now is None or then is None:
            continue
        matched += 1
        if now > factor * then:
            regressions.append((dict(key), then, now))

    if matched == 0:
        print("no rows matched the committed baseline; regenerate it with "
              "`bench_pump_scaling --smoke --json=BENCH_pump.json` (Release)",
              file=sys.stderr)
        return 2
    for labels, then, now in regressions:
        print(f"REGRESSION {labels}: {then:.3f} -> {now:.3f} us/event "
              f"(bound {factor:.1f}x)")
    print(f"checked {matched} rows against baseline: "
          f"{len(regressions)} regression(s)")
    return 1 if regressions else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
