// detlint — the repo's determinism & concurrency linter.
//
// Every headline claim in this reproduction rests on bit-determinism: the
// sharded simulator's tick barriers, the resilience subsystem's "inactive
// configs stay bit-identical" guarantee, and the record/replay fidelity
// proofs all diff output byte-for-byte. The twin-rerun and sanitizer jobs
// check that invariant dynamically, after a violation shipped; detlint
// checks it statically, at review time, by banning the code shapes that
// break it:
//
//   no-wallclock            wall-clock/entropy reads outside the audited
//                           support shims and bench mains
//   no-unordered-iteration  iteration over unordered containers (order can
//                           leak into event order), and any unordered
//                           container at all in sim-visible directories
//   no-pointer-order        pointer keys in ordered containers, std::less
//                           over pointers, and comparator lambdas ordering
//                           raw pointers (address order varies run-to-run)
//   confined-threads        raw std::thread/mutex/atomic outside support/
//                           and the audited concurrency registry
//   require-has-message     AHEFT_ASSERT/AHEFT_REQUIRE without a non-empty
//                           message
//   bad-suppression         a NOLINT-DET comment that does not parse or
//                           carries no reason (a suppression without a
//                           justification is itself a finding)
//   unused-suppression      a well-formed NOLINT-DET naming a rule that
//                           never fires on the line it shields (stale
//                           suppressions rot loudly instead of silently)
//
// Findings print `file:line: rule: message`. A finding is suppressed by a
// `// NOLINT-DET(rule[,rule...]): reason` comment on the same line, or on
// a comment-only line immediately above. `NOLINT-DET(*): reason`
// suppresses every rule on that line. A suppression without a reason does
// NOT suppress and is reported as `bad-suppression`. Neither
// bad-suppression nor unused-suppression can itself be suppressed.
//
// The linter is deliberately libclang-free: a small token scanner that
// understands comments, string/char literals, raw strings, preprocessor
// lines (with continuations), and digit separators. It is built and
// unit-tested like any other target (tests/test_detlint.cpp).
#ifndef AHEFT_TOOLS_DETLINT_H_
#define AHEFT_TOOLS_DETLINT_H_

#include <string>
#include <string_view>
#include <vector>

namespace detlint {

// ------------------------------------------------------------- tokens --

enum class TokenKind {
  kIdentifier,    // names and keywords
  kNumber,        // numeric literals (digit separators folded in)
  kString,        // "..." (prefix folded in; text excludes quotes)
  kRawString,     // R"delim(...)delim" (text excludes delimiters)
  kCharacter,     // '...'
  kPunct,         // single punctuation char, except "::" which is one token
  kComment,       // // or /* */; text excludes the comment markers
  kPreprocessor,  // a whole logical #-line, continuations folded in
};

struct Token {
  TokenKind kind;
  int line;  // 1-based line where the token starts
  std::string text;
};

/// Tokenizes C++ source. Never fails: unterminated constructs consume the
/// rest of the input as the current token.
std::vector<Token> tokenize(std::string_view source);

// ------------------------------------------------------------ findings --

struct Finding {
  std::string file;  // path label as given to lint_text / relative path
  int line = 0;
  std::string rule;
  std::string message;
  bool suppressed = false;
  std::string reason;  // the NOLINT-DET reason when suppressed
  /// For unused-suppression findings only: the named rule that never
  /// fired ("*" for a wildcard that suppressed nothing). Drives the
  /// per-rule stale_suppressions counts in to_json; empty otherwise.
  std::string stale_rule;
};

struct RuleInfo {
  std::string name;
  std::string summary;
};

/// The rules detlint enforces, in report order (includes bad-suppression).
const std::vector<RuleInfo>& rules();

// ------------------------------------------------------------- options --

struct Options {
  /// Directories (relative, '/'-separated, no trailing slash) where
  /// iteration order can reach event order: declaring an unordered
  /// container there is a finding even without iteration.
  std::vector<std::string> sim_visible_dirs = {
      "src/sim", "src/core", "src/grid", "src/resilience", "src/dag"};

  /// Files/directories where wall-clock and entropy reads are expected:
  /// the stopwatch shim, the env shim, and bench mains (which time their
  /// own runs).
  std::vector<std::string> wallclock_allowlist = {
      "src/support/stopwatch.h", "src/support/env.h", "src/support/env.cpp",
      "bench"};

  /// Audited concurrency modules (beyond src/support/, which is always
  /// allowed): loaded from tools/detlint/concurrency_registry.txt.
  std::vector<std::string> concurrency_registry;
};

/// Parses a registry file: one path per line, '#' comments, blank lines
/// ignored. Returns the entries; does not touch `options`.
std::vector<std::string> parse_registry(std::string_view text);

// -------------------------------------------------------------- driver --

/// Lints one translation unit given as text. `path_label` is the
/// '/'-separated repo-relative path; it drives the directory-scoped rules
/// and appears verbatim in findings.
std::vector<Finding> lint_text(const std::string& path_label,
                               std::string_view source,
                               const Options& options);

/// Report of a full run.
struct Report {
  std::vector<Finding> findings;  // suppressed and unsuppressed, in order
  int files_scanned = 0;

  [[nodiscard]] int unsuppressed_count() const;
  [[nodiscard]] int suppressed_count() const;
};

/// Serializes a report in the BENCH_*.json envelope
/// ({"bench": "detlint", ..., "rows": [per-rule counts], "findings":
/// [...]}) so it folds into the same artifact flow as the bench dumps.
std::string to_json(const Report& report);

}  // namespace detlint

#endif  // AHEFT_TOOLS_DETLINT_H_
