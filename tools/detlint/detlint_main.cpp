// detlint command-line driver.
//
//   detlint [--root=DIR] [--registry=FILE] [--json=FILE] [--list-rules]
//           [paths...]
//
// With no paths, scans src/, bench/, and tests/ under --root (default:
// the current directory). Paths may be files or directories and are
// interpreted relative to --root. Prints one `file:line: rule: message`
// per unsuppressed finding and exits 1 when any exist, 0 on a clean
// tree, 2 on usage errors.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "detlint/detlint.h"

namespace fs = std::filesystem;

namespace {

[[noreturn]] void usage(const std::string& error) {
  if (!error.empty()) {
    std::cerr << "detlint: " << error << "\n";
  }
  std::cerr << "usage: detlint [--root=DIR] [--registry=FILE] [--json=FILE]"
               " [--list-rules] [paths...]\n";
  std::exit(2);
}

bool lintable(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".h" || ext == ".hpp" || ext == ".cpp" || ext == ".cc";
}

std::string read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    usage("cannot read " + path.string());
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// `path` relative to `root` with '/' separators — the label the
/// directory-scoped rules and the report use.
std::string label_for(const fs::path& path, const fs::path& root) {
  const fs::path rel = path.lexically_relative(root);
  const fs::path& use = rel.empty() || *rel.begin() == ".." ? path : rel;
  return use.generic_string();
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = ".";
  std::string registry_path;
  std::string json_path;
  bool list_rules = false;
  std::vector<std::string> inputs;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value_of = [&](const std::string& flag) {
      return arg.substr(flag.size());
    };
    if (arg.rfind("--root=", 0) == 0) {
      root = value_of("--root=");
    } else if (arg.rfind("--registry=", 0) == 0) {
      registry_path = value_of("--registry=");
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = value_of("--json=");
    } else if (arg == "--list-rules") {
      list_rules = true;
    } else if (arg == "--help" || arg == "-h") {
      usage("");
    } else if (arg.rfind("--", 0) == 0) {
      usage("unknown flag " + arg);
    } else {
      inputs.push_back(arg);
    }
  }

  if (list_rules) {
    for (const detlint::RuleInfo& rule : detlint::rules()) {
      std::cout << rule.name << "\n    " << rule.summary << "\n";
    }
    return 0;
  }

  detlint::Options options;
  if (registry_path.empty()) {
    const fs::path standard = root / "tools/detlint/concurrency_registry.txt";
    if (fs::exists(standard)) {
      registry_path = standard.string();
    }
  }
  if (!registry_path.empty()) {
    options.concurrency_registry =
        detlint::parse_registry(read_file(registry_path));
  }

  if (inputs.empty()) {
    inputs = {"src", "bench", "tests"};
  }

  std::vector<fs::path> files;
  for (const std::string& input : inputs) {
    fs::path path = input;
    if (path.is_relative() && !fs::exists(path)) {
      path = root / input;
    }
    if (fs::is_directory(path)) {
      for (const auto& entry : fs::recursive_directory_iterator(path)) {
        if (entry.is_regular_file() && lintable(entry.path())) {
          files.push_back(entry.path());
        }
      }
    } else if (fs::is_regular_file(path)) {
      files.push_back(path);
    } else {
      usage("no such file or directory: " + input);
    }
  }
  std::sort(files.begin(), files.end());

  detlint::Report report;
  for (const fs::path& file : files) {
    const std::string label = label_for(file, root);
    std::vector<detlint::Finding> findings =
        detlint::lint_text(label, read_file(file), options);
    report.findings.insert(report.findings.end(), findings.begin(),
                           findings.end());
    ++report.files_scanned;
  }

  for (const detlint::Finding& finding : report.findings) {
    if (!finding.suppressed) {
      std::cout << finding.file << ":" << finding.line << ": "
                << finding.rule << ": " << finding.message << "\n";
    }
  }
  std::cerr << "detlint: " << report.files_scanned << " files, "
            << report.unsuppressed_count() << " findings ("
            << report.suppressed_count() << " suppressed)\n";

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      usage("cannot write " + json_path);
    }
    out << detlint::to_json(report);
  }
  return report.unsuppressed_count() > 0 ? 1 : 0;
}
