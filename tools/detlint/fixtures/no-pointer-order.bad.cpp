// detlint fixture — address-ordered data structures and comparators.
// Pointer values differ run to run (ASLR, allocation order), so anything
// ordered by them is nondeterministic. Each shape below must be reported
// under `no-pointer-order`.
#include <algorithm>
#include <map>
#include <set>
#include <vector>

struct Job {
  int id;
};

std::set<Job*> pending_jobs;  // finding: pointer key in ordered set

std::map<const Job*, double> finish_times;  // finding: pointer key in map

void sort_by_address(std::vector<Job*>& jobs) {
  std::sort(jobs.begin(), jobs.end(),
            [](const Job* a, const Job* b) {
              return a < b;  // finding: comparator orders raw pointers
            });
}

template <typename T>
using AddressOrdered = std::less<T*>;  // finding: std::less over pointers
