// detlint fixture — the clean twin of no-pointer-order.bad.cpp: the same
// structures keyed by stable ids, so order is identical on every run.
// Zero findings.
#include <algorithm>
#include <map>
#include <set>
#include <vector>

struct Job {
  int id;
};

std::set<int> pending_jobs;  // keyed by the job id, not the address

std::map<int, double> finish_times;

void sort_by_id(std::vector<Job*>& jobs) {
  std::sort(jobs.begin(), jobs.end(),
            [](const Job* a, const Job* b) {
              return a->id < b->id;  // stable id order
            });
}
