// detlint fixture — live suppressions. Every shield below absorbs a
// finding that actually fires on its line, so none of them is stale and
// the file produces zero unsuppressed findings. (This header
// deliberately avoids the tag so only the seeded lines count.)
#include <mutex>

// NOLINT-DET(confined-threads): guards the fixture's memo cache, never sim-visible
std::mutex cache_mutex;

std::mutex registry_mutex;  // NOLINT-DET(confined-threads): registry lock, init-order safe
