// detlint fixture — assertions without a message. A bare condition tells
// the operator nothing when it fires at tick 1e9 of a replay; each
// shape below must be reported under `require-has-message`.

void assert_fail(const char* expr, const char* file, int line,
                 const char* message);

#define AHEFT_ASSERT(...) static_cast<void>(0)
#define AHEFT_REQUIRE(...) static_cast<void>(0)

void admit(int jobs, int machines) {
  AHEFT_REQUIRE(jobs > 0);  // finding: no message

  AHEFT_ASSERT(machines > 0, "");  // finding: empty message

  AHEFT_ASSERT(jobs < machines * 1024,
               "admission would oversubscribe the pool");  // ok
}
