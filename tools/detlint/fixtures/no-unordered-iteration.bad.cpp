// detlint fixture — iteration over unordered containers, whose order is
// unspecified and can leak into event order. Each loop below must be
// reported under `no-unordered-iteration`.
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

std::vector<std::string> job_names(
    const std::unordered_map<int, std::string>& jobs) {
  std::vector<std::string> names;
  for (const auto& [id, name] : jobs) {  // finding: range-for
    names.push_back(name);
  }
  return names;
}

double total_weight(const std::unordered_set<int>& ready) {
  double total = 0.0;
  for (auto it = ready.begin(); it != ready.end(); ++it) {  // finding: begin()
    total += static_cast<double>(*it);
  }
  return total;
}
