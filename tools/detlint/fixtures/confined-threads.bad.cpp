// detlint fixture — raw threading primitives outside src/support/ and
// the audited concurrency registry. Each use below must be reported
// under `confined-threads`: ad-hoc threads bypass the thread pool whose
// parallel_for join is the sharded core's tick barrier.
#include <atomic>
#include <mutex>
#include <thread>
#include <vector>

std::mutex results_mutex;  // finding: raw mutex

std::atomic<int> completed{0};  // finding: raw atomic

void run_workers(const std::vector<int>& work) {
  std::vector<std::thread> workers;  // finding: raw thread
  for (std::size_t i = 0; i < work.size(); ++i) {
    workers.emplace_back([&] { completed.fetch_add(1); });
  }
  for (auto& worker : workers) {
    worker.join();
  }
}
