// detlint fixture — well-formed suppressions: rule named, reason given.
// The mutex findings below are suppressed and justified, so this file
// must produce zero unsuppressed findings.
#include <mutex>

// NOLINT-DET(confined-threads): guards a process-wide memo cache, never sim-visible
std::mutex cache_mutex;

std::mutex registry_mutex;  // NOLINT-DET(confined-threads): registry lock, init-order safe

// A suppression on a comment-only line shields the line directly below
// it; the wildcard form covers every rule with one justification.
// NOLINT-DET(*): fixture exercising the wildcard suppression form
std::mutex wildcard_mutex;
