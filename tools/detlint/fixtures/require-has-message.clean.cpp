// detlint fixture — the clean twin of require-has-message.bad.cpp:
// every assertion states the invariant it guards. Zero findings.

#define AHEFT_ASSERT(...) static_cast<void>(0)
#define AHEFT_REQUIRE(...) static_cast<void>(0)

void admit(int jobs, int machines) {
  AHEFT_REQUIRE(jobs > 0, "a workflow must carry at least one job");

  AHEFT_ASSERT(machines > 0, "admission ran against an empty pool");

  AHEFT_ASSERT(jobs < machines * 1024,
               "admission would oversubscribe the pool");
}
