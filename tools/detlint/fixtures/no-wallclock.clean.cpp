// detlint fixture — the clean twin of no-wallclock.bad.cpp: the same
// jobs done through the audited shims and simulation time. Must produce
// zero findings.
#include <cstdint>
#include <string>

namespace aheft {
struct Stopwatch {  // stand-in for support/stopwatch.h
  double seconds() const { return 0.0; }
};
struct RngStream {  // stand-in for support/rng.h
  explicit RngStream(std::uint64_t seed) : state(seed) {}
  std::uint64_t state;
  int uniform_int(int lo, int hi);
};
std::string env_or(const std::string& name, const std::string& fallback);
}  // namespace aheft

double elapsed_since(const aheft::Stopwatch& watch) {
  return watch.seconds();  // bench timing goes through the stopwatch shim
}

double stamp_run(double sim_now) {
  return sim_now;  // runs are stamped with simulation time, not time()
}

int roll_dice(aheft::RngStream& rng) {
  return rng.uniform_int(1, 6);  // seeded stream, replayable bit-for-bit
}

std::uint64_t fresh_seed(std::uint64_t campaign_seed, std::uint64_t index) {
  return campaign_seed * 0x9e3779b97f4a7c15ull + index;  // derived, not drawn
}

std::string pick_backend() {
  return aheft::env_or("AHEFT_BACKEND", "synthetic");  // support/env shim
}
