// detlint fixture — the clean twin of confined-threads.bad.cpp: the same
// fan-out routed through support/thread_pool, whose parallel_for join is
// the deterministic tick barrier. Zero findings.
#include <cstddef>
#include <vector>

namespace aheft {
class ThreadPool {  // stand-in for support/thread_pool.h
 public:
  template <typename Fn>
  void parallel_for(std::size_t count, std::size_t chunk, Fn&& fn);
};
}  // namespace aheft

void run_workers(aheft::ThreadPool& pool, std::vector<int>& results) {
  pool.parallel_for(results.size(), 1,
                    [&](std::size_t i) { results[i] += 1; });
}
