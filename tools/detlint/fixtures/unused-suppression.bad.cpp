// detlint fixture — stale suppressions. Every shield below is
// well-formed (rule named or wildcard, reason given) but sits on a line
// where its rule never fires, so each one is an `unused-suppression`
// finding and nothing else. (This header deliberately avoids the tag so
// only the seeded lines count.)

int once_timed = 0;  // NOLINT-DET(no-wallclock): shielded a time() call that was refactored away

// NOLINT-DET(confined-threads): the mutex moved to support/, the shield stayed behind
int no_longer_locked = 0;

int blanket = 0;  // NOLINT-DET(*): blanket shield over a line with no findings at all
