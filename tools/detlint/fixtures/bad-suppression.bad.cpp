// detlint fixture — suppressions that do not justify themselves. A
// suppression comment that is malformed or carries no reason is itself
// a finding (`bad-suppression`) and suppresses nothing. (This header
// deliberately avoids the tag itself so only the seeded lines count.)

int no_reason = 0;  // NOLINT-DET(no-wallclock)

int empty_reason = 0;  // NOLINT-DET(no-wallclock):

int unknown_rule = 0;  // NOLINT-DET(made-up-rule): not a real rule

int bare_tag = 0;  // NOLINT-DET without even a rule list
