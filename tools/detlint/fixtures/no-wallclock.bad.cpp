// detlint fixture — every line here that reads the wall clock or ambient
// entropy must be reported under `no-wallclock`. Never compiled; linted
// by tests/test_detlint.cpp and the CI lint job.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

double elapsed_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now() - start)  // finding: now()
      .count();
}

long stamp_run() {
  return static_cast<long>(time(nullptr));  // finding: time()
}

int roll_dice() {
  return std::rand() % 6;  // finding: rand()
}

unsigned fresh_seed() {
  std::random_device device;  // finding: random_device
  return device();
}

const char* pick_backend() {
  return std::getenv("AHEFT_BACKEND");  // finding: getenv
}
