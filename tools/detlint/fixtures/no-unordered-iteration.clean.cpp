// detlint fixture — the clean twin of no-unordered-iteration.bad.cpp:
// unordered containers used only for O(1) probes (never iterated), with
// ordered traversal done over a vector or std::map. Zero findings.
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

std::vector<std::string> job_names(
    const std::map<int, std::string>& jobs) {
  std::vector<std::string> names;
  for (const auto& [id, name] : jobs) {  // std::map: deterministic order
    names.push_back(name);
  }
  return names;
}

double total_weight(const std::vector<int>& ready_in_arrival_order) {
  double total = 0.0;
  for (const int id : ready_in_arrival_order) {
    total += static_cast<double>(id);
  }
  return total;
}

bool is_cached(const std::unordered_map<int, double>& cache, int key) {
  return cache.find(key) != cache.end();  // probe only — order never read
}
