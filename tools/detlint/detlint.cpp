#include "detlint/detlint.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <map>
#include <set>
#include <sstream>
#include <utility>

namespace detlint {
namespace {

bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool is_digit(char c) { return std::isdigit(static_cast<unsigned char>(c)) != 0; }

}  // namespace

// ============================================================ tokenizer ==

std::vector<Token> tokenize(std::string_view source) {
  std::vector<Token> tokens;
  std::size_t i = 0;
  const std::size_t n = source.size();
  int line = 1;
  bool at_line_start = true;  // only whitespace seen since the last newline

  auto peek = [&](std::size_t offset) -> char {
    return i + offset < n ? source[i + offset] : '\0';
  };
  // True when a backslash-newline (or backslash-CR-LF) splice starts at
  // `pos`; advances `pos` past it and bumps the line counter.
  auto eat_splice = [&](std::size_t& pos) -> bool {
    if (pos < n && source[pos] == '\\') {
      std::size_t next = pos + 1;
      if (next < n && source[next] == '\r') {
        ++next;
      }
      if (next < n && source[next] == '\n') {
        pos = next + 1;
        ++line;
        return true;
      }
    }
    return false;
  };

  while (i < n) {
    const char c = source[i];

    // ---- whitespace -----------------------------------------------------
    if (c == '\n') {
      ++line;
      ++i;
      at_line_start = true;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f') {
      ++i;
      continue;
    }
    if (eat_splice(i)) {
      at_line_start = true;
      continue;
    }

    // ---- preprocessor line (with continuations) -------------------------
    if (c == '#' && at_line_start) {
      const int start_line = line;
      std::string text;
      while (i < n) {
        if (eat_splice(i)) {
          text += ' ';
          continue;
        }
        const char d = source[i];
        if (d == '\n') {
          break;  // the newline itself is handled by the main loop
        }
        if (d == '/' && peek(1) == '/') {
          // A line comment inside a directive runs to the (possibly
          // spliced) end of the logical line.
          while (i < n && source[i] != '\n') {
            if (eat_splice(i)) {
              continue;
            }
            ++i;
          }
          break;
        }
        if (d == '/' && peek(1) == '*') {
          i += 2;
          while (i < n && !(source[i] == '*' && peek(1) == '/')) {
            if (source[i] == '\n') {
              ++line;
            }
            ++i;
          }
          i = std::min(i + 2, n);
          text += ' ';
          continue;
        }
        if (d == '"') {
          // Quoted region inside a directive: a // in a #define'd string
          // must not be mistaken for a comment.
          text += d;
          ++i;
          while (i < n && source[i] != '"' && source[i] != '\n') {
            if (source[i] == '\\' && i + 1 < n) {
              text += source[i];
              ++i;
            }
            text += source[i];
            ++i;
          }
          if (i < n && source[i] == '"') {
            text += '"';
            ++i;
          }
          continue;
        }
        text += d;
        ++i;
      }
      tokens.push_back(Token{TokenKind::kPreprocessor, start_line, text});
      continue;
    }
    at_line_start = false;

    // ---- comments -------------------------------------------------------
    if (c == '/' && peek(1) == '/') {
      const int start_line = line;
      i += 2;
      std::string text;
      while (i < n && source[i] != '\n') {
        if (eat_splice(i)) {  // a line comment ending in backslash continues
          text += ' ';
          continue;
        }
        text += source[i];
        ++i;
      }
      tokens.push_back(Token{TokenKind::kComment, start_line, text});
      continue;
    }
    if (c == '/' && peek(1) == '*') {
      const int start_line = line;
      i += 2;
      std::string text;
      while (i < n && !(source[i] == '*' && peek(1) == '/')) {
        if (source[i] == '\n') {
          ++line;
        }
        text += source[i];
        ++i;
      }
      i = std::min(i + 2, n);
      tokens.push_back(Token{TokenKind::kComment, start_line, text});
      continue;
    }

    // ---- raw strings ----------------------------------------------------
    {
      std::size_t prefix_len = 0;
      for (const std::string_view prefix : {"u8R", "uR", "UR", "LR", "R"}) {
        if (source.substr(i, prefix.size()) == prefix &&
            peek(prefix.size()) == '"') {
          prefix_len = prefix.size();
          break;
        }
      }
      if (prefix_len > 0) {
        const int start_line = line;
        i += prefix_len + 1;  // past the opening quote
        std::string delim;
        while (i < n && source[i] != '(' && source[i] != '\n') {
          delim += source[i];
          ++i;
        }
        if (i < n && source[i] == '(') {
          ++i;
        }
        const std::string closer = ")" + delim + "\"";
        std::string text;
        while (i < n && source.substr(i, closer.size()) != closer) {
          if (source[i] == '\n') {
            ++line;
          }
          text += source[i];
          ++i;
        }
        i = std::min(i + closer.size(), n);
        tokens.push_back(Token{TokenKind::kRawString, start_line, text});
        continue;
      }
    }

    // ---- ordinary strings (with encoding prefixes) ----------------------
    {
      std::size_t prefix_len = 0;
      bool is_string = c == '"';
      if (!is_string) {
        for (const std::string_view prefix : {"u8", "u", "U", "L"}) {
          if (source.substr(i, prefix.size()) == prefix &&
              peek(prefix.size()) == '"') {
            prefix_len = prefix.size();
            is_string = true;
            break;
          }
        }
      }
      if (is_string) {
        const int start_line = line;
        i += prefix_len + 1;
        std::string text;
        while (i < n && source[i] != '"' && source[i] != '\n') {
          if (source[i] == '\\' && i + 1 < n) {
            text += source[i];
            ++i;
          }
          text += source[i];
          ++i;
        }
        if (i < n && source[i] == '"') {
          ++i;
        }
        tokens.push_back(Token{TokenKind::kString, start_line, text});
        continue;
      }
    }

    // ---- character literals ---------------------------------------------
    if (c == '\'') {
      const int start_line = line;
      ++i;
      std::string text;
      while (i < n && source[i] != '\'' && source[i] != '\n') {
        if (source[i] == '\\' && i + 1 < n) {
          text += source[i];
          ++i;
        }
        text += source[i];
        ++i;
      }
      if (i < n && source[i] == '\'') {
        ++i;
      }
      tokens.push_back(Token{TokenKind::kCharacter, start_line, text});
      continue;
    }

    // ---- numbers (pp-number, digit separators folded in) ----------------
    if (is_digit(c) || (c == '.' && is_digit(peek(1)))) {
      const int start_line = line;
      std::string text;
      while (i < n) {
        const char d = source[i];
        if (is_ident_char(d) || d == '.') {
          text += d;
          ++i;
          continue;
        }
        if (d == '\'' && !text.empty() && is_ident_char(peek(1))) {
          text += d;  // digit separator
          ++i;
          continue;
        }
        if ((d == '+' || d == '-') && !text.empty()) {
          const char prev = text.back();
          if (prev == 'e' || prev == 'E' || prev == 'p' || prev == 'P') {
            text += d;
            ++i;
            continue;
          }
        }
        break;
      }
      tokens.push_back(Token{TokenKind::kNumber, start_line, text});
      continue;
    }

    // ---- identifiers ----------------------------------------------------
    if (is_ident_start(c)) {
      const int start_line = line;
      std::string text;
      while (i < n && is_ident_char(source[i])) {
        text += source[i];
        ++i;
      }
      tokens.push_back(Token{TokenKind::kIdentifier, start_line, text});
      continue;
    }

    // ---- punctuation ("::" kept as one token) ---------------------------
    if (c == ':' && peek(1) == ':') {
      tokens.push_back(Token{TokenKind::kPunct, line, "::"});
      i += 2;
      continue;
    }
    tokens.push_back(Token{TokenKind::kPunct, line, std::string(1, c)});
    ++i;
  }
  return tokens;
}

// ============================================================== rules ==

const std::vector<RuleInfo>& rules() {
  static const std::vector<RuleInfo> kRules = {
      {"no-wallclock",
       "wall-clock and entropy reads (std::chrono::*_clock::now, time(), "
       "rand(), std::random_device, getenv) are banned outside "
       "support/stopwatch.h, support/env.*, and bench mains"},
      {"no-unordered-iteration",
       "iteration over unordered containers is banned everywhere; declaring "
       "one at all is banned in sim-visible directories where iteration "
       "order can reach event order"},
      {"no-pointer-order",
       "pointer keys in ordered containers, std::less over pointers, and "
       "comparators ordering raw pointers are banned (address order varies "
       "run-to-run)"},
      {"confined-threads",
       "raw std::thread/mutex/atomic primitives are only allowed in "
       "src/support/ and the audited modules listed in "
       "tools/detlint/concurrency_registry.txt; everything else routes "
       "through support/thread_pool"},
      {"require-has-message",
       "every AHEFT_ASSERT/AHEFT_REQUIRE carries a non-empty message"},
      {"bad-suppression",
       "a NOLINT-DET comment that does not parse or has no reason"},
      {"unused-suppression",
       "a well-formed NOLINT-DET naming a rule that never fires on the "
       "shielded line (or a wildcard that suppresses nothing); stale "
       "suppressions are findings so they rot loudly, and cannot "
       "themselves be suppressed"},
  };
  return kRules;
}

namespace {

// One parsed `NOLINT-DET(rule[,rule...]): reason` suppression.
struct Suppression {
  std::set<std::string> rules;  // empty + wildcard=true means all rules
  bool wildcard = false;
  std::string reason;
  int comment_line = 0;  // where the NOLINT-DET comment itself sits
  // Usage accounting for unused-suppression: which of the named rules
  // actually suppressed a finding, and whether the suppression matched
  // anything at all (the latter is what a wildcard is judged by).
  std::set<std::string> used_rules;
  bool used = false;
};

struct SuppressionMap {
  std::map<int, std::vector<Suppression>> by_line;

  /// First suppression covering (line, rule), marked used. Only the
  /// first match absorbs the finding, so a redundant duplicate on the
  /// same line stays unused and is reported as stale.
  [[nodiscard]] Suppression* covering(int line, const std::string& rule) {
    auto it = by_line.find(line);
    if (it == by_line.end()) {
      return nullptr;
    }
    for (Suppression& s : it->second) {
      if (s.wildcard || s.rules.count(rule) > 0) {
        s.used = true;
        if (s.rules.count(rule) > 0) {
          s.used_rules.insert(rule);
        }
        return &s;
      }
    }
    return nullptr;
  }
};

std::string trim(std::string_view text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(text[begin])) != 0) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1])) != 0) {
    --end;
  }
  return std::string(text.substr(begin, end - begin));
}

bool is_known_rule(const std::string& name) {
  for (const RuleInfo& info : rules()) {
    if (info.name == name) {
      return true;
    }
  }
  return false;
}

/// Parses the suppressions out of the comment tokens. A suppression on a
/// comment-only line applies to the next line instead of its own; a
/// malformed or reason-less suppression is reported and suppresses
/// nothing.
SuppressionMap collect_suppressions(const std::vector<Token>& tokens,
                                    const std::string& file,
                                    std::vector<Finding>& findings) {
  std::set<int> code_lines;
  for (const Token& token : tokens) {
    if (token.kind != TokenKind::kComment &&
        token.kind != TokenKind::kPreprocessor) {
      code_lines.insert(token.line);
    }
  }

  SuppressionMap map;
  for (const Token& token : tokens) {
    if (token.kind != TokenKind::kComment) {
      continue;
    }
    std::size_t pos = 0;
    while ((pos = token.text.find("NOLINT-DET", pos)) != std::string::npos) {
      const std::size_t tag_end = pos + std::string("NOLINT-DET").size();
      pos = tag_end;
      auto bad = [&](const std::string& why) {
        findings.push_back(Finding{file, token.line, "bad-suppression", why,
                                   false, "", ""});
      };
      if (tag_end >= token.text.size() || token.text[tag_end] != '(') {
        bad("NOLINT-DET must name its rules: NOLINT-DET(rule): reason");
        continue;
      }
      const std::size_t close = token.text.find(')', tag_end);
      if (close == std::string::npos) {
        bad("unterminated NOLINT-DET rule list");
        continue;
      }
      Suppression suppression;
      bool rules_ok = true;
      std::stringstream list(
          token.text.substr(tag_end + 1, close - tag_end - 1));
      std::string rule;
      while (std::getline(list, rule, ',')) {
        rule = trim(rule);
        if (rule == "*") {
          suppression.wildcard = true;
        } else if (is_known_rule(rule)) {
          suppression.rules.insert(rule);
        } else {
          bad("unknown rule '" + rule + "' in NOLINT-DET");
          rules_ok = false;
        }
      }
      if (!rules_ok) {
        continue;
      }
      if (suppression.rules.empty() && !suppression.wildcard) {
        bad("empty rule list in NOLINT-DET");
        continue;
      }
      std::size_t after = close + 1;
      if (after >= token.text.size() || token.text[after] != ':') {
        bad("NOLINT-DET(" + trim(token.text.substr(tag_end + 1,
                                                   close - tag_end - 1)) +
            ") has no reason; a suppression must justify itself");
        continue;
      }
      suppression.reason = trim(token.text.substr(after + 1));
      if (suppression.reason.empty()) {
        bad("NOLINT-DET reason is empty; a suppression must justify itself");
        continue;
      }
      // A comment-only line shields the line below it; an end-of-line
      // comment shields its own line.
      const int target = code_lines.count(token.line) > 0 ? token.line
                                                          : token.line + 1;
      suppression.comment_line = token.line;
      map.by_line[target].push_back(std::move(suppression));
    }
  }
  return map;
}

/// Path helpers — all paths are '/'-separated and repo-relative.
bool path_within(const std::string& path, const std::string& entry) {
  if (entry.empty()) {
    return false;
  }
  if (path == entry) {
    return true;
  }
  return path.size() > entry.size() && path.compare(0, entry.size(), entry) == 0 &&
         path[entry.size()] == '/';
}

bool path_in_any(const std::string& path,
                 const std::vector<std::string>& entries) {
  return std::any_of(entries.begin(), entries.end(),
                     [&](const std::string& e) { return path_within(path, e); });
}

/// Code-token cursor: the rules only look at identifier/number/literal/
/// punct tokens; comments and preprocessor lines are stripped first.
class Code {
 public:
  explicit Code(const std::vector<Token>& tokens) {
    for (const Token& token : tokens) {
      if (token.kind != TokenKind::kComment &&
          token.kind != TokenKind::kPreprocessor) {
        tokens_.push_back(&token);
      }
    }
  }

  [[nodiscard]] std::size_t size() const { return tokens_.size(); }
  [[nodiscard]] const Token& at(std::size_t i) const { return *tokens_[i]; }

  [[nodiscard]] bool is(std::size_t i, std::string_view text) const {
    return i < size() && tokens_[i]->text == text;
  }
  [[nodiscard]] bool is_ident(std::size_t i) const {
    return i < size() && tokens_[i]->kind == TokenKind::kIdentifier;
  }
  /// Text of token i, or "" past either end (i is signed to allow i-1 at 0).
  [[nodiscard]] std::string text(std::ptrdiff_t i) const {
    if (i < 0 || static_cast<std::size_t>(i) >= size()) {
      return "";
    }
    return tokens_[static_cast<std::size_t>(i)]->text;
  }

  /// Index just past the bracket matching the opener at `open` (whose text
  /// must be one of ( [ { <). Returns size() when unmatched.
  [[nodiscard]] std::size_t match(std::size_t open) const {
    const std::string& opener = tokens_[open]->text;
    std::string closer;
    if (opener == "(") {
      closer = ")";
    } else if (opener == "[") {
      closer = "]";
    } else if (opener == "{") {
      closer = "}";
    } else if (opener == "<") {
      closer = ">";
    }
    int depth = 0;
    for (std::size_t i = open; i < size(); ++i) {
      if (tokens_[i]->text == opener) {
        ++depth;
      } else if (tokens_[i]->text == closer) {
        if (--depth == 0) {
          return i + 1;
        }
      }
    }
    return size();
  }

 private:
  std::vector<const Token*> tokens_;
};

class Linter {
 public:
  Linter(std::string file, const Code& code, const Options& options,
         std::vector<Finding>& findings)
      : file_(std::move(file)), code_(code), options_(options),
        findings_(findings) {}

  void run() {
    collect_unordered_vars();
    for (std::size_t i = 0; i < code_.size(); ++i) {
      rule_no_wallclock(i);
      rule_no_unordered_iteration(i);
      rule_no_pointer_order(i);
      rule_confined_threads(i);
      rule_require_has_message(i);
    }
  }

 private:
  void emit(std::size_t token_index, const std::string& rule,
            std::string message) {
    const int line = code_.at(token_index).line;
    // Dedupe: `m.begin(), m.end()` is one finding, not two.
    for (const Finding& f : findings_) {
      if (f.line == line && f.rule == rule && f.message == message) {
        return;
      }
    }
    findings_.push_back(
        Finding{file_, line, rule, std::move(message), false, "", ""});
  }

  [[nodiscard]] bool std_qualified(std::size_t i) const {
    return code_.text(static_cast<std::ptrdiff_t>(i) - 1) == "::" &&
           code_.text(static_cast<std::ptrdiff_t>(i) - 2) == "std";
  }
  [[nodiscard]] bool member_access(std::size_t i) const {
    const std::string prev = code_.text(static_cast<std::ptrdiff_t>(i) - 1);
    if (prev == ".") {
      return true;
    }
    return prev == ">" &&
           code_.text(static_cast<std::ptrdiff_t>(i) - 2) == "-";
  }

  // ---- no-wallclock ----------------------------------------------------
  void rule_no_wallclock(std::size_t i) {
    if (path_in_any(file_, options_.wallclock_allowlist)) {
      return;
    }
    if (!code_.is_ident(i)) {
      return;
    }
    const std::string& name = code_.at(i).text;
    static const std::set<std::string> kClocks = {
        "steady_clock", "system_clock", "high_resolution_clock"};
    if (kClocks.count(name) > 0 && code_.is(i + 1, "::") &&
        code_.is(i + 2, "now")) {
      emit(i, "no-wallclock",
           "std::chrono::" + name + "::now reads the wall clock; use "
           "support/stopwatch.h (bench timing) or simulation time");
      return;
    }
    if (name == "random_device" && !member_access(i)) {
      emit(i, "no-wallclock",
           "std::random_device is nondeterministic entropy; seed a "
           "support/rng RngStream instead");
      return;
    }
    if (name == "getenv" && code_.is(i + 1, "(")) {
      emit(i, "no-wallclock",
           "getenv reads ambient process state; route through support/env");
      return;
    }
    if ((name == "rand" || name == "srand") && code_.is(i + 1, "(") &&
        !member_access(i)) {
      // some_ns::rand(...) is someone else's function; std::rand, ::rand,
      // and bare rand are the libc generator.
      const std::string prev = code_.text(static_cast<std::ptrdiff_t>(i) - 1);
      if (prev == "::" && !std_qualified(i) && i >= 2 &&
          code_.at(i - 2).kind == TokenKind::kIdentifier) {
        return;
      }
      emit(i, "no-wallclock",
           name + "() uses hidden global state; use support/rng");
      return;
    }
    if (name == "time" && code_.is(i + 1, "(") && !member_access(i)) {
      // Only the libc call shapes: time(nullptr) / time(NULL) / time(0).
      const std::string arg = code_.text(static_cast<std::ptrdiff_t>(i) + 2);
      if ((arg == "nullptr" || arg == "NULL" || arg == "0") &&
          code_.is(i + 3, ")")) {
        emit(i, "no-wallclock",
             "time() reads the wall clock; use simulation time");
      }
      return;
    }
    // Only the qualified forms: a bare `clock()` is far more often a
    // member/accessor named clock (e.g. ExecutionSnapshot::clock) than
    // the libc timer.
    if (name == "clock" && code_.is(i + 1, "(") && code_.is(i + 2, ")") &&
        code_.text(static_cast<std::ptrdiff_t>(i) - 1) == "::" &&
        (std_qualified(i) || i < 2 ||
         code_.at(i - 2).kind != TokenKind::kIdentifier)) {
      emit(i, "no-wallclock",
           "std::clock() reads process time; use support/stopwatch.h");
    }
  }

  // ---- no-unordered-iteration ------------------------------------------
  static bool is_unordered_type(const std::string& name) {
    return name == "unordered_map" || name == "unordered_set" ||
           name == "unordered_multimap" || name == "unordered_multiset";
  }

  /// Records every variable declared in this file with an unordered
  /// container type, so iteration over it can be flagged by name.
  void collect_unordered_vars() {
    for (std::size_t i = 0; i < code_.size(); ++i) {
      if (!code_.is_ident(i) || !is_unordered_type(code_.at(i).text) ||
          !code_.is(i + 1, "<")) {
        continue;
      }
      std::size_t j = code_.match(i + 1);
      while (j < code_.size() &&
             (code_.is(j, "&") || code_.is(j, "*") || code_.is(j, "const"))) {
        ++j;
      }
      if (j < code_.size() && code_.is_ident(j) && !code_.is(j + 1, "(")) {
        unordered_vars_.insert(code_.at(j).text);
      }
    }
  }

  void rule_no_unordered_iteration(std::size_t i) {
    if (code_.is_ident(i) && is_unordered_type(code_.at(i).text) &&
        path_in_any(file_, options_.sim_visible_dirs)) {
      emit(i, "no-unordered-iteration",
           "std::" + code_.at(i).text + " in sim-visible code: iteration "
           "order could reach event order; use an ordered container or "
           "justify with NOLINT-DET");
    }
    // Range-for whose range names an unordered variable.
    if (code_.is(i, "for") && code_.is(i + 1, "(")) {
      const std::size_t end = code_.match(i + 1);
      std::size_t colon = code_.size();
      int depth = 0;
      for (std::size_t j = i + 1; j < end; ++j) {
        if (code_.is(j, "(") || code_.is(j, "[") || code_.is(j, "{")) {
          ++depth;
        } else if (code_.is(j, ")") || code_.is(j, "]") || code_.is(j, "}")) {
          --depth;
        } else if (depth == 1 && code_.is(j, ":")) {
          colon = j;
          break;
        }
      }
      for (std::size_t j = colon; j < end; ++j) {
        if (code_.is_ident(j) && unordered_vars_.count(code_.at(j).text) > 0) {
          emit(i, "no-unordered-iteration",
               "range-for over unordered container '" + code_.at(j).text +
               "': iteration order is unspecified and varies across "
               "implementations; iterate a sorted copy or an ordered "
               "container");
          break;
        }
      }
    }
    // Explicit iterator loops: var.begin() / var.cbegin() / var.rbegin().
    if (code_.is_ident(i) && unordered_vars_.count(code_.at(i).text) > 0 &&
        code_.is(i + 1, ".")) {
      // Only the loop-starting begin() family: a bare .end() is almost
      // always the `find(x) != end()` probe idiom, which never observes
      // iteration order.
      const std::string next = code_.text(static_cast<std::ptrdiff_t>(i) + 2);
      if (next == "begin" || next == "cbegin" || next == "rbegin") {
        emit(i, "no-unordered-iteration",
             "iterator walk over unordered container '" + code_.at(i).text +
             "': iteration order is unspecified; iterate a sorted copy or "
             "an ordered container");
      }
    }
  }

  // ---- no-pointer-order ------------------------------------------------
  void rule_no_pointer_order(std::size_t i) {
    if (code_.is_ident(i) && std_qualified(i) && code_.is(i + 1, "<")) {
      const std::string& name = code_.at(i).text;
      const bool ordered_assoc = name == "map" || name == "set" ||
                                 name == "multimap" || name == "multiset";
      if (ordered_assoc) {
        // Pointer anywhere in the KEY type (first top-level template arg).
        const std::size_t end = code_.match(i + 1);
        int depth = 0;
        for (std::size_t j = i + 1; j < end; ++j) {
          if (code_.is(j, "<") || code_.is(j, "(")) {
            ++depth;
          } else if (code_.is(j, ">") || code_.is(j, ")")) {
            --depth;
          } else if (depth == 1 && code_.is(j, ",")) {
            break;  // key type ends at the first top-level comma
          } else if (code_.is(j, "*")) {
            emit(i, "no-pointer-order",
                 "std::" + name + " keyed by a raw pointer orders by "
                 "address, which varies run-to-run; key by a stable id");
            break;
          }
        }
      } else if (name == "less" || name == "greater") {
        const std::size_t end = code_.match(i + 1);
        for (std::size_t j = i + 1; j < end; ++j) {
          if (code_.is(j, "*")) {
            emit(i, "no-pointer-order",
                 "std::" + name + " over a raw pointer orders by address, "
                 "which varies run-to-run; compare stable ids");
            break;
          }
        }
      }
      return;
    }
    // Comparator lambdas ordering raw pointers:
    //   [](const T* a, const T* b) { return a < b; }
    if (code_.is(i, "[")) {
      const std::string prev = code_.text(static_cast<std::ptrdiff_t>(i) - 1);
      const Token* prev_token =
          i > 0 ? &code_.at(i - 1) : nullptr;
      const bool subscript =
          prev_token != nullptr &&
          (prev_token->kind == TokenKind::kIdentifier || prev == ")" ||
           prev == "]");
      if (subscript) {
        return;
      }
      const std::size_t captures_end = code_.match(i);
      if (captures_end >= code_.size() || !code_.is(captures_end, "(")) {
        return;
      }
      const std::size_t params_end = code_.match(captures_end);
      // Parameters that are raw pointers: remember the parameter name
      // (the last identifier before the top-level , or )).
      std::set<std::string> pointer_params;
      {
        bool has_star = false;
        std::string last_ident;
        int depth = 0;
        for (std::size_t j = captures_end + 1; j < params_end; ++j) {
          if (code_.is(j, "<") || code_.is(j, "(") || code_.is(j, "[")) {
            ++depth;
          } else if (code_.is(j, ">") || code_.is(j, ")") ||
                     code_.is(j, "]")) {
            --depth;
          } else if (depth == 0 && code_.is(j, ",")) {
            if (has_star && !last_ident.empty()) {
              pointer_params.insert(last_ident);
            }
            has_star = false;
            last_ident.clear();
          } else if (code_.is(j, "*")) {
            has_star = true;
          } else if (code_.is_ident(j)) {
            last_ident = code_.at(j).text;
          }
        }
        if (has_star && !last_ident.empty()) {
          pointer_params.insert(last_ident);
        }
      }
      if (pointer_params.size() < 2) {
        return;
      }
      // Body: the next { ... } before a ; ends the candidate.
      std::size_t body = params_end;
      while (body < code_.size() && !code_.is(body, "{") &&
             !code_.is(body, ";")) {
        ++body;
      }
      if (body >= code_.size() || !code_.is(body, "{")) {
        return;
      }
      const std::size_t body_end = code_.match(body);
      for (std::size_t j = body + 1; j + 2 < body_end; ++j) {
        if (code_.is_ident(j) &&
            pointer_params.count(code_.at(j).text) > 0 &&
            (code_.is(j + 1, "<") || code_.is(j + 1, ">")) &&
            code_.is_ident(j + 2) &&
            pointer_params.count(code_.at(j + 2).text) > 0) {
          emit(j, "no-pointer-order",
               "comparator orders raw pointers '" + code_.at(j).text +
               "' and '" + code_.at(j + 2).text + "' by address, which "
               "varies run-to-run; compare stable ids");
        }
      }
    }
  }

  // ---- confined-threads ------------------------------------------------
  void rule_confined_threads(std::size_t i) {
    if (path_within(file_, "src/support") ||
        path_in_any(file_, options_.concurrency_registry)) {
      return;
    }
    if (!code_.is_ident(i) || !std_qualified(i)) {
      return;
    }
    static const std::set<std::string> kPrimitives = {
        "thread", "jthread", "this_thread",
        "mutex", "timed_mutex", "recursive_mutex", "recursive_timed_mutex",
        "shared_mutex", "shared_timed_mutex",
        "condition_variable", "condition_variable_any",
        "atomic", "atomic_flag", "atomic_ref",
        "once_flag", "call_once",
        "counting_semaphore", "binary_semaphore", "barrier", "latch",
        "future", "promise", "async", "packaged_task"};
    const std::string& name = code_.at(i).text;
    const bool atomic_alias =
        name.rfind("atomic_", 0) == 0;  // atomic_bool, atomic_int, ...
    if (kPrimitives.count(name) > 0 || atomic_alias) {
      emit(i, "confined-threads",
           "std::" + name + " outside src/support/ and the audited "
           "concurrency registry; route work through support/thread_pool "
           "or add this file to tools/detlint/concurrency_registry.txt "
           "with an audit note");
    }
  }

  // ---- require-has-message ---------------------------------------------
  void rule_require_has_message(std::size_t i) {
    if (!code_.is_ident(i)) {
      return;
    }
    const std::string& name = code_.at(i).text;
    if ((name != "AHEFT_ASSERT" && name != "AHEFT_REQUIRE") ||
        !code_.is(i + 1, "(")) {
      return;
    }
    const std::size_t end = code_.match(i + 1);
    // Count top-level arguments and remember the last one. Angle brackets
    // are deliberately NOT bracket-matched here: `a < b` is a common
    // condition and must not swallow the message comma. (A template comma
    // inside an argument then over-counts args, which is harmless for
    // this rule.)
    int depth = 0;
    int args = 0;
    std::vector<std::size_t> last_arg;
    for (std::size_t j = i + 2; j + 1 < end; ++j) {
      if (code_.is(j, "(") || code_.is(j, "[") || code_.is(j, "{")) {
        ++depth;
      } else if (code_.is(j, ")") || code_.is(j, "]") || code_.is(j, "}")) {
        --depth;
      } else if (depth == 0 && code_.is(j, ",")) {
        ++args;
        last_arg.clear();
        continue;
      }
      last_arg.push_back(j);
    }
    if (end >= i + 4) {
      ++args;  // the final (or only) argument — the parens were non-empty
    }
    if (args < 2) {
      emit(i, "require-has-message",
           name + " carries no message; state what invariant failed");
      return;
    }
    bool empty_message = true;
    for (const std::size_t j : last_arg) {
      const Token& token = code_.at(j);
      if (token.kind == TokenKind::kString ||
          token.kind == TokenKind::kRawString) {
        if (!token.text.empty()) {
          empty_message = false;
        }
      } else {
        empty_message = false;  // an expression; assume it says something
      }
    }
    if (empty_message) {
      emit(i, "require-has-message",
           name + " message is empty; state what invariant failed");
    }
  }

  std::string file_;
  const Code& code_;
  const Options& options_;
  std::vector<Finding>& findings_;
  std::set<std::string> unordered_vars_;
};

}  // namespace

// ============================================================= driver ==

std::vector<std::string> parse_registry(std::string_view text) {
  std::vector<std::string> entries;
  std::stringstream stream{std::string(text)};
  std::string line;
  while (std::getline(stream, line)) {
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) {
      line = line.substr(0, hash);
    }
    line = trim(line);
    if (!line.empty()) {
      entries.push_back(line);
    }
  }
  return entries;
}

std::vector<Finding> lint_text(const std::string& path_label,
                               std::string_view source,
                               const Options& options) {
  const std::vector<Token> tokens = tokenize(source);
  std::vector<Finding> findings;
  SuppressionMap suppressions =
      collect_suppressions(tokens, path_label, findings);
  const Code code(tokens);
  Linter(path_label, code, options, findings).run();
  for (Finding& finding : findings) {
    if (finding.rule == "bad-suppression") {
      continue;  // a broken suppression cannot suppress itself
    }
    if (const Suppression* s =
            suppressions.covering(finding.line, finding.rule)) {
      finding.suppressed = true;
      finding.reason = s->reason;
    }
  }
  // Stale suppressions: every named rule that never absorbed a finding
  // on its shielded line, and every wildcard that absorbed nothing, is a
  // finding of its own (unsuppressable — it is the suppression machinery
  // judging itself).
  for (const auto& [target, list] : suppressions.by_line) {
    (void)target;
    for (const Suppression& s : list) {
      for (const std::string& rule : s.rules) {
        if (s.used_rules.count(rule) == 0) {
          findings.push_back(Finding{
              path_label, s.comment_line, "unused-suppression",
              "NOLINT-DET(" + rule +
                  ") suppresses nothing: the rule never fires on the "
                  "shielded line; remove the stale suppression",
              false, "", rule});
        }
      }
      if (s.wildcard && !s.used) {
        findings.push_back(Finding{
            path_label, s.comment_line, "unused-suppression",
            "NOLINT-DET(*) suppresses nothing on the shielded line; "
            "remove the stale suppression",
            false, "", "*"});
      }
    }
  }
  std::stable_sort(findings.begin(), findings.end(),
                   [](const Finding& a, const Finding& b) {
                     return a.line < b.line;
                   });
  return findings;
}

int Report::unsuppressed_count() const {
  return static_cast<int>(std::count_if(
      findings.begin(), findings.end(),
      [](const Finding& f) { return !f.suppressed; }));
}

int Report::suppressed_count() const {
  return static_cast<int>(findings.size()) - unsuppressed_count();
}

namespace {

std::string json_escape(const std::string& text) {
  std::string out = "\"";
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

}  // namespace

std::string to_json(const Report& report) {
  std::ostringstream out;
  out << "{\n  \"bench\": \"detlint\",\n  \"scale\": \"tree\",\n"
      << "  \"seed\": 0,\n  \"files_scanned\": " << report.files_scanned
      << ",\n  \"rows\": [";
  bool first = true;
  for (const RuleInfo& rule : rules()) {
    int open = 0;
    int suppressed = 0;
    int stale = 0;
    for (const Finding& f : report.findings) {
      if (f.rule == rule.name) {
        (f.suppressed ? suppressed : open) += 1;
      }
      if (f.rule == "unused-suppression" && f.stale_rule == rule.name) {
        stale += 1;
      }
    }
    out << (first ? "\n" : ",\n") << "    {\"labels\": {\"rule\": "
        << json_escape(rule.name) << "}, \"metrics\": {\"findings\": " << open
        << ", \"suppressed\": " << suppressed
        << ", \"stale_suppressions\": " << stale << "}}";
    first = false;
  }
  out << "\n  ],\n  \"findings\": [";
  first = true;
  for (const Finding& f : report.findings) {
    out << (first ? "\n" : ",\n") << "    {\"file\": " << json_escape(f.file)
        << ", \"line\": " << f.line << ", \"rule\": " << json_escape(f.rule)
        << ", \"message\": " << json_escape(f.message)
        << ", \"suppressed\": " << (f.suppressed ? "true" : "false")
        << ", \"reason\": " << json_escape(f.reason) << "}";
    first = false;
  }
  out << "\n  ]\n}\n";
  return out.str();
}

}  // namespace detlint
