// EXP-A1 — real-workload archives: SWF import fidelity and the fitted
// generator's statistical faithfulness.
//
// Three stages, each with a hard self-check (nonzero exit on failure):
//
//   reference   synthesizes an archive from KNOWN distributions —
//               log-normal runtimes, diurnal non-homogeneous Poisson
//               arrivals, geometric bags — writes it through write_swf,
//               reads it back (round-trip proof), fits it with
//               fit_archive, and generates a fresh stream from the fit.
//               The generated stream must match the source archive's
//               runtime and interarrival marginals within a two-sample
//               Kolmogorov–Smirnov bound.
//   replay      compiles the checked-in sample_clean.swf fixture through
//               the `archive` ScenarioSource backend and verifies the
//               mapped scenario (pool from MaxNodes, submit-ordered
//               arrivals, bounded load multipliers).
//   soak        drives the codes-workload-style load/get_next generator
//               for >= 100k jobs (1M at default scale) with O(1) state:
//               arrivals must stay monotone, runtimes positive, and a
//               second stream at the same seed bit-identical.
//
// Extra knobs: --smoke, --json=path (per-stage fidelity metrics at full
// precision, uploaded by CI into the BENCH_stream.json artifact), and
// --archive-fit-report: skip the stages, fit the SWF/GWA log named by
// --archive (default: the checked-in sample_clean.swf fixture) and dump
// the complete ArchiveFit as JSON — to the --json path when given, else
// to stdout — so fitted models can be inspected and diffed offline.
#include <algorithm>
#include <array>
#include <cmath>
#include <cstdlib>
#include <iostream>
#include <numbers>
#include <string>
#include <vector>

#include "archive/fitted_model.h"
#include "archive/swf_reader.h"
#include "bench_util.h"
#include "support/rng.h"
#include "support/stats.h"
#include "traces/scenario_source.h"

using namespace aheft;

namespace {

// Two-sample KS bounds for the fitted stream vs its source archive.
// With tens of thousands of samples the same-distribution critical value
// at alpha = 0.05 is ~0.014; the slack covers fitting bias (the
// generator draws from the *fitted* marginal, not the empirical one).
// Observed values sit near 0.01 across seeds; the bounds would catch a
// reversion of either the empirical intra-bag gap table or the
// service-time renewal correction on bag-head rates (each alone costs
// ~0.07 of interarrival KS).
constexpr double kRuntimeKsBound = 0.05;
constexpr double kInterarrivalKsBound = 0.05;

/// Ground truth of the synthesized reference archive.
struct Reference {
  double mu = 4.5;       ///< log-runtime mean
  double sigma = 1.0;    ///< log-runtime spread
  double bag_p = 0.4;    ///< geometric bag-size parameter
  double intra_gap = 20.0;
  double base_rate = 0.02;  ///< bag heads per second at the quietest hour
};

/// Synthesizes an SWF log with known marginals: diurnal Poisson bag
/// arrivals, geometric bag sizes, iid log-normal runtimes, a small
/// processor-count support.
archive::SwfLog synthesize(const Reference& ref, std::size_t jobs,
                           std::uint64_t seed) {
  archive::SwfLog log;
  log.header.fields = {{"Version", "2.2"},
                       {"MaxNodes", "16"},
                       {"MaxProcs", "64"},
                       {"UnixStartTime", "1167609600"}};
  RngStream arrivals = RngStream(seed).child("ref-arrivals");
  RngStream runtimes = RngStream(seed).child("ref-runtimes");
  RngStream bags = RngStream(seed).child("ref-bags");
  const std::vector<std::int64_t> procs_support{1, 1, 2, 2, 4, 8};

  // Hourly bag-head rates: a day-shaped profile peaking at 15:00.
  std::array<double, 24> rate{};
  double peak = 0.0;
  for (std::size_t h = 0; h < 24; ++h) {
    rate[h] = ref.base_rate *
              (1.0 + 0.8 * std::sin((static_cast<double>(h) - 9.0) *
                                    std::numbers::pi / 12.0));
    peak = std::max(peak, rate[h]);
  }

  double now = 0.0;
  std::int64_t id = 0;
  while (log.jobs.size() < jobs) {
    // Thinned non-homogeneous Poisson bag head.
    for (;;) {
      now += arrivals.exponential(1.0 / peak);
      const auto hour = static_cast<std::size_t>(
                            std::fmod(now, 86400.0) / 3600.0) %
                        24;
      if (arrivals.uniform01() * peak <= rate[hour]) {
        break;
      }
    }
    const std::size_t bag_size = bags.geometric(ref.bag_p);
    const std::int64_t user = bags.uniform_int(1, 12);
    const std::int64_t procs = procs_support[bags.index(
        procs_support.size())];
    double submit = now;
    for (std::size_t i = 0; i < bag_size && log.jobs.size() < jobs; ++i) {
      if (i > 0) {
        submit += arrivals.exponential(ref.intra_gap);
      }
      archive::SwfJob job;
      job.id = ++id;
      job.submit = submit;
      job.wait = runtimes.exponential(30.0);
      job.runtime = runtimes.log_normal(ref.mu, ref.sigma);
      job.procs = procs;
      job.requested_procs = procs;
      job.requested_time = job.runtime * 2.0;
      job.status = 1;
      job.user = user;
      job.executable = user;
      log.jobs.push_back(job);
    }
    now = submit;
  }
  return log;
}

std::vector<double> gaps_of(const std::vector<double>& times) {
  std::vector<double> gaps;
  gaps.reserve(times.size());
  for (std::size_t i = 1; i < times.size(); ++i) {
    gaps.push_back(times[i] - times[i - 1]);
  }
  return gaps;
}

bool check(bool ok, const std::string& what) {
  std::cout << "  " << (ok ? "PASS" : "FAIL") << "  " << what << "\n";
  return ok;
}

void append_array(std::ostream& out, const char* key,
                  const std::vector<double>& values) {
  out << "  \"" << key << "\": [";
  for (std::size_t i = 0; i < values.size(); ++i) {
    out << (i == 0 ? "" : ", ") << values[i];
  }
  out << "],\n";
}

/// --archive-fit-report: the complete fitted model of one log as a JSON
/// object (full double precision, arrays included), for offline
/// inspection and cross-commit diffing of fits.
void write_fit_report(std::ostream& out, const std::string& path,
                      const archive::ArchiveFit& fit) {
  out << std::setprecision(17);
  out << "{\n  \"archive\": \"" << path << "\",\n"
      << "  \"runtime_family\": \""
      << (fit.runtime_is_log_normal ? "log-normal" : "weibull") << "\",\n"
      << "  \"runtime_log_normal\": {\"mu\": " << fit.runtime_log_normal.mu
      << ", \"sigma\": " << fit.runtime_log_normal.sigma << "},\n"
      << "  \"runtime_weibull\": {\"shape\": " << fit.runtime_weibull.shape
      << ", \"scale\": " << fit.runtime_weibull.scale << "},\n"
      << "  \"runtime_ks\": {\"log_normal\": " << fit.runtime_ks_log_normal
      << ", \"weibull\": " << fit.runtime_ks_weibull << "},\n";
  append_array(out, "hourly_rate",
               {fit.hourly_rate.begin(), fit.hourly_rate.end()});
  out << "  \"phase_seconds\": " << fit.phase_seconds << ",\n"
      << "  \"mean_rate\": " << fit.mean_rate << ",\n"
      << "  \"peak_rate\": " << fit.peak_rate << ",\n"
      << "  \"bag_size_p\": " << fit.bag_size_p << ",\n"
      << "  \"mean_bag_size\": " << fit.mean_bag_size << ",\n"
      << "  \"intra_bag_gap_mean\": " << fit.intra_bag_gap_mean << ",\n";
  append_array(out, "intra_gap_quantiles", fit.intra_gap_quantiles);
  out << "  \"runtime_correlation\": " << fit.runtime_correlation << ",\n"
      << "  \"procs_cdf\": [";
  for (std::size_t i = 0; i < fit.procs_cdf.size(); ++i) {
    out << (i == 0 ? "" : ", ") << "[" << fit.procs_cdf[i].first << ", "
        << fit.procs_cdf[i].second << "]";
  }
  out << "],\n"
      << "  \"fitted_jobs\": " << fit.fitted_jobs << ",\n"
      << "  \"span_seconds\": " << fit.span_seconds << ",\n"
      << "  \"mean_runtime\": " << fit.mean_runtime << ",\n"
      << "  \"mean_procs\": " << fit.mean_procs << "\n}\n";
}

int run_fit_report(const bench::BenchOptions& options) {
  const std::string path =
      options.archive_path.empty()
          ? std::string(AHEFT_TEST_DATA_DIR) + "/sample_clean.swf"
          : options.archive_path;
  archive::ArchiveFit fit;
  try {
    fit = archive::fit_archive(archive::read_swf_file(path));
  } catch (const std::exception& error) {
    std::cerr << "--archive-fit-report: cannot fit " << path << ": "
              << error.what() << "\n";
    return 2;
  }
  if (options.json.empty()) {
    write_fit_report(std::cout, path, fit);
    return 0;
  }
  std::ofstream out(options.json);
  if (!out) {
    std::cerr << "--json: cannot write " << options.json << "\n";
    return 2;
  }
  write_fit_report(out, path, fit);
  std::cout << "fit report for " << path << " (" << fit.fitted_jobs
            << " jobs) written to " << options.json << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchOptions options = bench::parse_options(argc, argv);
  const ArgParser args(argc, argv);
  if (args.has("smoke")) {
    options.scale = Scale::kSmoke;
  }
  if (args.has("archive-fit-report")) {
    return run_fit_report(options);
  }
  const bool smoke = options.scale == Scale::kSmoke;
  const std::size_t reference_jobs = smoke ? 20000 : 50000;
  const std::size_t soak_jobs = smoke ? 100000 : 1000000;

  bench::print_header("Archive workloads: import fidelity and fitted-stream "
                      "faithfulness",
                      options, 3);
  bench::JsonReport report("bench_archive_workloads", options);
  bool ok = true;

  // ---------------------------------------------------------- reference --
  std::cout << "reference archive (" << reference_jobs << " jobs):\n";
  const Reference ref;
  const archive::SwfLog source =
      synthesize(ref, reference_jobs, options.seed);
  // Round-trip proof: the writer emits exactly what the reader parses.
  const archive::SwfLog reread =
      archive::read_swf_string(archive::write_swf_string(source));
  ok &= check(reread.jobs == source.jobs &&
                  reread.header.fields == source.header.fields,
              "write_swf / read_swf round-trip is identical");

  const archive::ArchiveFit fit = archive::fit_archive(reread);
  ok &= check(fit.runtime_is_log_normal,
              "KS model selection picks the true (log-normal) family");
  ok &= check(std::abs(fit.runtime_log_normal.mu - ref.mu) < 0.05 &&
                  std::abs(fit.runtime_log_normal.sigma - ref.sigma) < 0.05,
              "MLE recovers mu/sigma within 0.05");

  std::vector<double> source_runtimes;
  std::vector<double> source_arrivals;
  source_runtimes.reserve(source.jobs.size());
  source_arrivals.reserve(source.jobs.size());
  for (const archive::SwfJob& job : source.jobs) {
    source_runtimes.push_back(job.runtime);
    source_arrivals.push_back(job.submit);
  }
  archive::FittedJobStream generated(fit, options.seed + 1);
  std::vector<double> gen_runtimes;
  std::vector<double> gen_arrivals;
  gen_runtimes.reserve(source.jobs.size());
  gen_arrivals.reserve(source.jobs.size());
  for (std::size_t i = 0; i < source.jobs.size(); ++i) {
    const archive::GeneratedJob job = generated.next();
    gen_runtimes.push_back(job.runtime);
    gen_arrivals.push_back(job.arrival);
  }
  const double ks_runtime = ks_distance(source_runtimes, gen_runtimes);
  const double ks_gap =
      ks_distance(gaps_of(source_arrivals), gaps_of(gen_arrivals));
  ok &= check(ks_runtime <= kRuntimeKsBound,
              "runtime marginal KS " + format_double(ks_runtime, 4) +
                  " <= " + format_double(kRuntimeKsBound, 2));
  ok &= check(ks_gap <= kInterarrivalKsBound,
              "interarrival marginal KS " + format_double(ks_gap, 4) +
                  " <= " + format_double(kInterarrivalKsBound, 2));
  report.add_row({{"stage", "reference"}},
                 {{"jobs", static_cast<double>(reference_jobs)},
                  {"ks_runtime", ks_runtime},
                  {"ks_interarrival", ks_gap},
                  {"fitted_mu", fit.runtime_log_normal.mu},
                  {"fitted_sigma", fit.runtime_log_normal.sigma},
                  {"fitted_mean_bag", fit.mean_bag_size},
                  {"fitted_correlation", fit.runtime_correlation}});

  // ------------------------------------------------------------- replay --
  std::cout << "\nfixture replay (sample_clean.swf):\n";
  traces::ScenarioRequest request;
  request.archive.path = std::string(AHEFT_TEST_DATA_DIR) +
                         "/sample_clean.swf";
  request.horizon = 4000.0;
  const traces::CompiledScenario scenario =
      traces::build_scenario("archive", request);
  bool monotone = true;
  for (std::size_t i = 1; i < scenario.job_arrivals.size(); ++i) {
    monotone &= scenario.job_arrivals[i].arrival >=
                scenario.job_arrivals[i - 1].arrival;
  }
  bool load_bounded = true;
  for (const traces::LoadSegment& segment : scenario.load.segments()) {
    load_bounded &= segment.multiplier > 1.0 && segment.multiplier <= 2.0;
  }
  ok &= check(scenario.pool.universe_size() == 8,
              "pool sized from the MaxNodes header (8 machines)");
  ok &= check(scenario.job_arrivals.size() == 38 && monotone,
              "38 usable jobs become submit-ordered arrivals");
  ok &= check(!scenario.load.segments().empty() && load_bounded,
              "utilization load segments stay within (1, 1+amplitude]");
  report.add_row(
      {{"stage", "replay"}},
      {{"machines", static_cast<double>(scenario.pool.universe_size())},
       {"arrivals", static_cast<double>(scenario.job_arrivals.size())},
       {"load_segments",
        static_cast<double>(scenario.load.segments().size())},
       {"events", static_cast<double>(scenario.events.size())}});

  // --------------------------------------------------------------- soak --
  std::cout << "\nfitted-stream soak (" << soak_jobs << " jobs):\n";
  archive::FittedJobStream soak(fit, options.seed);
  archive::FittedJobStream twin(fit, options.seed);
  Stopwatch watch;
  bool soak_ok = true;
  bool deterministic = true;
  double last_arrival = 0.0;
  std::uint64_t bags_seen = 0;
  std::uint64_t last_bag = ~0ull;
  for (std::size_t i = 0; i < soak_jobs; ++i) {
    const archive::GeneratedJob job = soak.next();
    const archive::GeneratedJob copy = twin.next();
    soak_ok &= job.arrival >= last_arrival && job.runtime > 0.0 &&
               job.procs > 0;
    deterministic &= job.arrival == copy.arrival &&
                     job.runtime == copy.runtime && job.procs == copy.procs;
    last_arrival = job.arrival;
    if (job.bag != last_bag) {
      last_bag = job.bag;
      ++bags_seen;
    }
  }
  const double seconds = watch.seconds();
  ok &= check(soak_ok, "arrivals monotone, runtimes/procs positive across "
                       "the whole soak");
  ok &= check(deterministic,
              "a twin stream at the same seed is bit-identical");
  std::cout << "  " << soak_jobs << " jobs in " << format_double(seconds, 2)
            << "s (" << format_double(
                            static_cast<double>(soak_jobs) /
                                std::max(seconds, 1e-9) / 1e6,
                            2)
            << "M jobs/s), " << bags_seen << " bags, span "
            << format_double(last_arrival / 86400.0, 1) << " simulated days\n";
  report.add_row({{"stage", "soak"}},
                 {{"jobs", static_cast<double>(soak_jobs)},
                  {"seconds", seconds},
                  {"bags", static_cast<double>(bags_seen)},
                  {"span_days", last_arrival / 86400.0}});

  report.write_if_requested(options);
  std::cout << "\narchive-workloads self-check: " << (ok ? "PASS" : "FAIL")
            << "\n";
  return ok ? 0 : 1;
}
