// EXP-A1 — ablation over the scheduler's policy knobs (ours, not in the
// paper): slot policy, running-job policy, adoption threshold, and order
// exploration. Shows which design choices carry the improvement.
#include <iostream>

#include "bench_util.h"
#include "exp/paper_params.h"

using namespace aheft;

namespace {

std::vector<exp::CaseSpec> base_cases(const bench::BenchOptions& options) {
  // A mixed bag: random DAGs across CCRs plus mid-size BLAST instances.
  std::vector<exp::CaseSpec> specs;
  std::size_t repeats = options.scale == Scale::kSmoke ? 1 : 4;
  if (options.scale == Scale::kPaper) {
    repeats = 20;
  }
  for (const double ccr : exp::kCcrValues) {
    for (std::size_t inst = 0; inst < repeats; ++inst) {
      exp::CaseSpec spec;
      spec.app = exp::AppKind::kRandom;
      spec.size = 60;
      spec.ccr = ccr;
      spec.out_degree = 0.3;
      spec.beta = 0.5;
      spec.dynamics = {10, 400.0, 0.2};
      spec.seed = exp::case_seed(options.seed, spec, inst);
      specs.push_back(spec);

      exp::CaseSpec blast;
      blast.app = exp::AppKind::kBlast;
      blast.size = 200;
      blast.ccr = ccr;
      blast.beta = 0.5;
      blast.dynamics = {20, 400.0, 0.2};
      blast.seed = exp::case_seed(options.seed, blast, inst);
      specs.push_back(blast);
    }
  }
  return specs;
}

exp::GroupStats run_variant(const bench::BenchOptions& options,
                            std::vector<exp::CaseSpec> specs,
                            const core::SchedulerConfig& config) {
  for (exp::CaseSpec& spec : specs) {
    spec.scheduler = config;
  }
  const exp::SweepOutcome outcome =
      exp::run_sweep(std::move(specs), options.threads);
  return exp::overall(outcome);
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchOptions options = bench::parse_options(argc, argv);
  const std::vector<exp::CaseSpec> specs = base_cases(options);
  bench::print_header("Ablation — scheduler policy knobs", options,
                      specs.size());

  struct Variant {
    std::string name;
    core::SchedulerConfig config;
  };
  std::vector<Variant> variants;
  {
    Variant v{"baseline (insertion, keep-running, thr 0, no explore)", {}};
    variants.push_back(v);
  }
  {
    Variant v{"end-of-queue slots", {}};
    v.config.slot_policy = core::SlotPolicy::kEndOfQueue;
    variants.push_back(v);
  }
  {
    Variant v{"restartable running jobs", {}};
    v.config.running_policy = core::RunningJobPolicy::kRestartable;
    variants.push_back(v);
  }
  {
    Variant v{"order exploration k=4", {}};
    v.config.order_candidates = 4;
    variants.push_back(v);
  }
  {
    Variant v{"order exploration k=16", {}};
    v.config.order_candidates = 16;
    variants.push_back(v);
  }
  {
    Variant v{"adoption threshold 5%", {}};
    v.config.adoption_threshold = 0.05;
    variants.push_back(v);
  }
  {
    Variant v{"adoption threshold 20%", {}};
    v.config.adoption_threshold = 0.20;
    variants.push_back(v);
  }

  AsciiTable table({"variant", "avg HEFT", "avg AHEFT", "improvement",
                    "adoptions/case"});
  for (const Variant& variant : variants) {
    const exp::GroupStats stats = run_variant(options, specs, variant.config);
    table.add_row({variant.name, format_double(stats.heft.mean(), 0),
                   format_double(stats.aheft.mean(), 0),
                   format_percent(stats.improvement()),
                   format_double(stats.adoptions.mean(), 2)});
  }
  std::cout << table.to_string() << "\n"
            << "Reading: the adoption filter makes every variant safe; the\n"
               "slot policy and thresholds trade improvement for stability.\n";
  return 0;
}
