// EXP-T8 — paper Table 8: improvement rate by CCR on the applications.
// Published: BLAST 16.1/15.5/14.3/19.1/26.1 % (rising at high CCR),
// WIEN2K 7.3/7.3/6.6/5.3/6.4 % (flat) for CCR = 0.1, 0.5, 1, 5, 10.
#include <iostream>

#include "bench_util.h"
#include "exp/paper_ref.h"

using namespace aheft;

int main(int argc, char** argv) {
  const bench::BenchOptions options = bench::parse_options(argc, argv);

  AsciiTable table({"CCR", "blast impr.", "paper", "wien2k impr.", "paper"});
  std::map<double, double> blast_rows;
  std::map<double, double> wien_rows;
  for (const exp::AppKind app :
       {exp::AppKind::kBlast, exp::AppKind::kWien2k}) {
    std::vector<exp::CaseSpec> specs =
        exp::build_app_sweep(app, options.scale, options.seed);
    bench::print_header(
        "Table 8 — " + exp::to_string(app) + " improvement vs CCR", options,
        specs.size());
    const exp::SweepOutcome outcome = bench::run(options, std::move(specs));
    const auto groups =
        exp::group_by(outcome, [](const exp::CaseSpec& s) { return s.ccr; });
    for (const auto& [ccr, stats] : groups) {
      (app == exp::AppKind::kBlast ? blast_rows : wien_rows)[ccr] =
          stats.improvement();
    }
  }
  std::size_t row = 0;
  for (const auto& [ccr, blast_improvement] : blast_rows) {
    const std::string paper_blast =
        row < exp::paper::kTable8Blast.size()
            ? format_percent(exp::paper::kTable8Blast[row])
            : "-";
    const std::string paper_wien =
        row < exp::paper::kTable8Wien2k.size()
            ? format_percent(exp::paper::kTable8Wien2k[row])
            : "-";
    table.add_row({format_double(ccr, 1), format_percent(blast_improvement),
                   paper_blast,
                   wien_rows.count(ccr) ? format_percent(wien_rows[ccr]) : "-",
                   paper_wien});
    ++row;
  }
  std::cout << table.to_string() << "\n"
            << "Expected shape: BLAST sensitive to CCR, WIEN2K flat.\n";
  return 0;
}
