// EXP-T1 — HEFT vs AHEFT under trace-driven and bursty grid volatility.
//
// The paper evaluates AHEFT only on fixed-interval synthetic dynamics
// (Table 2/5); this bench drives both strategies through the scenario-
// source registry instead: an MMPP-style `bursty` environment (clustered
// arrivals + load spikes) and a `trace` environment replayed from a
// recorded file. It also proves record/replay fidelity: the first case's
// environment is written to a grid trace and re-run through the trace
// source, which must reproduce the identical AHEFT makespan and event
// sequence.
//
// Extra knobs: --trace-out=path keeps the recorded trace file around.
#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "traces/compiler.h"
#include "traces/trace_format.h"

using namespace aheft;

namespace {

std::vector<exp::CaseSpec> build_specs(Scale scale, std::uint64_t master) {
  std::vector<std::size_t> jobs = {40, 80};
  std::vector<double> ccrs = {0.5, 1.0, 2.0};
  std::size_t instances = 3;
  if (scale == Scale::kSmoke) {
    jobs = {40};
    ccrs = {1.0};
    instances = 1;
  } else if (scale == Scale::kPaper) {
    jobs = {20, 40, 60, 80, 100};
    instances = 25;
  }

  std::vector<exp::CaseSpec> specs;
  for (const std::size_t v : jobs) {
    for (const double ccr : ccrs) {
      for (std::size_t inst = 0; inst < instances; ++inst) {
        exp::CaseSpec spec;
        spec.app = exp::AppKind::kRandom;
        spec.size = v;
        spec.ccr = ccr;
        spec.dynamics = {6, 300.0, 0.2};
        spec.bursty.mean_calm = 400.0;
        spec.bursty.mean_burst = 120.0;
        spec.bursty.calm_arrival_mean = 600.0;
        spec.bursty.burst_arrival_mean = 45.0;
        spec.react_to_variance = true;  // load spikes feed the monitor
        spec.seed = exp::case_seed(master, spec, inst);
        specs.push_back(spec);
      }
    }
  }
  return specs;
}

void report(const char* title, const exp::SweepOutcome& outcome) {
  const exp::GroupStats stats = exp::overall(outcome);
  const double heft = stats.heft.mean();
  const double aheft = stats.aheft.mean();
  AsciiTable table({"strategy", "avg makespan", "vs HEFT"});
  table.add_row({"HEFT (static)", format_double(heft, 1), "1.00"});
  table.add_row({"AHEFT (adaptive)", format_double(aheft, 1),
                 format_double(aheft / heft, 2)});
  std::cout << title << "\n"
            << table.to_string() << "AHEFT improvement over HEFT: "
            << format_percent(stats.improvement())
            << "   (mean adoptions/case: "
            << format_double(stats.adoptions.mean(), 2) << ")\n\n";
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchOptions options = bench::parse_options(argc, argv);
  const ArgParser args(argc, argv);
  std::string trace_path = args.get("trace-out", "");
  const bool keep_trace = !trace_path.empty();
  if (!keep_trace) {
    trace_path = "bench_trace_replay_tmp.trace";
  }

  std::vector<exp::CaseSpec> bursty_specs =
      build_specs(options.scale, options.seed);
  bench::print_header("Trace replay: HEFT vs AHEFT under grid volatility",
                      options, bursty_specs.size());

  // --- replay fidelity: record case 0's environment, re-run from file --
  exp::CaseSpec probe = bursty_specs.front();
  probe.scenario_source = "bursty";
  const exp::CaseEnvironment env = exp::build_case_environment(probe);
  traces::write_trace_file(
      trace_path, traces::record_scenario(env.scenario, "bench-replay"));

  exp::CaseSpec replay = probe;
  replay.scenario_source = "trace";
  replay.trace_path = trace_path;
  const exp::CaseResult live = exp::run_case(probe);
  const exp::CaseResult replayed = exp::run_case(replay);
  // Compare the replayed event stream straight from the trace source —
  // no need to rebuild the whole case environment for it.
  traces::ScenarioRequest replay_request;
  replay_request.trace_path = trace_path;
  const bool faithful =
      live.aheft_makespan == replayed.aheft_makespan &&
      traces::build_scenario("trace", replay_request).events ==
          env.scenario.events;
  std::cout << "record/replay fidelity: "
            << (faithful ? "identical makespan and event sequence"
                         : "MISMATCH")
            << " (aheft " << format_double(live.aheft_makespan, 3) << " vs "
            << format_double(replayed.aheft_makespan, 3) << ", "
            << env.scenario.events.size() << " events)\n\n";

  // --- bursty scenario -------------------------------------------------
  {
    std::vector<exp::CaseSpec> specs = bursty_specs;
    exp::set_scenario_source(specs, "bursty");
    const exp::SweepOutcome outcome = bench::run(options, std::move(specs));
    report("bursty scenario (MMPP arrivals + load spikes):", outcome);
  }

  // --- trace-driven scenario: every DAG rides the recorded grid -------
  {
    std::vector<exp::CaseSpec> specs = bursty_specs;
    exp::set_scenario_source(specs, "trace", trace_path);
    const exp::SweepOutcome outcome = bench::run(options, std::move(specs));
    report("trace-driven scenario (replayed recording):", outcome);
  }

  if (!keep_trace) {
    std::remove(trace_path.c_str());
  } else {
    std::cout << "recorded trace kept at " << trace_path << "\n";
  }
  return faithful ? 0 : 1;
}
