// EXP-M1 — microbenchmarks (google-benchmark) for the scheduling core and
// simulation kernel: the costs a deployment would care about, since the
// Planner reschedules on-line while the workflow runs.
#include <benchmark/benchmark.h>

#include "core/execution_engine.h"
#include "core/heft.h"
#include "core/ranking.h"
#include "core/rescheduler.h"
#include "sim/simulator.h"
#include "support/rng.h"
#include "workloads/random_dag.h"
#include "workloads/scenario.h"

namespace {

using namespace aheft;

struct BenchCase {
  workloads::Workload workload;
  grid::ResourcePool pool;
  grid::MachineModel model;
};

BenchCase make_case(std::size_t jobs, std::size_t resources) {
  RngStream rng(mix64(jobs, resources));
  workloads::RandomDagParams params;
  params.jobs = jobs;
  params.ccr = 1.0;
  params.out_degree = 0.3;
  RngStream dag_stream = rng.child("dag");
  workloads::Workload w =
      workloads::generate_random_workload(params, dag_stream);
  grid::ResourcePool pool;
  for (std::size_t r = 0; r < resources; ++r) {
    pool.add(grid::Resource{});
  }
  grid::MachineModel model =
      workloads::build_machine_model(w, resources, 0.5, 99);
  return BenchCase{std::move(w), std::move(pool), std::move(model)};
}

void BM_UpwardRanks(benchmark::State& state) {
  const BenchCase c = make_case(static_cast<std::size_t>(state.range(0)), 20);
  const auto visible = c.pool.available_at(0.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::upward_ranks(c.workload.dag, c.model, visible));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(c.workload.dag.job_count()));
}
BENCHMARK(BM_UpwardRanks)->Arg(20)->Arg(100)->Arg(500)->Arg(2000);

void BM_HeftSchedule(benchmark::State& state) {
  const BenchCase c = make_case(static_cast<std::size_t>(state.range(0)),
                                static_cast<std::size_t>(state.range(1)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::heft_schedule(c.workload.dag, c.model, c.pool));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(c.workload.dag.job_count()));
}
BENCHMARK(BM_HeftSchedule)
    ->Args({20, 10})
    ->Args({100, 10})
    ->Args({100, 50})
    ->Args({500, 50})
    ->Args({2000, 100});

void BM_AheftMidRunReschedule(benchmark::State& state) {
  const BenchCase c = make_case(static_cast<std::size_t>(state.range(0)), 20);
  const core::Schedule plan =
      core::heft_schedule(c.workload.dag, c.model, c.pool);
  sim::Simulator sim;
  core::ExecutionEngine engine(sim, c.workload.dag, c.model, c.pool);
  engine.submit(plan);
  sim.run_until(plan.makespan() / 2.0);
  const core::ExecutionSnapshot snapshot = engine.snapshot();

  core::RescheduleRequest request;
  request.dag = &c.workload.dag;
  request.estimates = &c.model;
  request.pool = &c.pool;
  request.resources = c.pool.available_at(snapshot.clock());
  request.clock = snapshot.clock();
  request.snapshot = &snapshot;
  request.previous = &engine.current_schedule();
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::aheft_schedule(request));
  }
}
BENCHMARK(BM_AheftMidRunReschedule)->Arg(20)->Arg(100)->Arg(500);

void BM_EngineReplay(benchmark::State& state) {
  const BenchCase c = make_case(static_cast<std::size_t>(state.range(0)), 20);
  const core::Schedule plan =
      core::heft_schedule(c.workload.dag, c.model, c.pool);
  for (auto _ : state) {
    sim::Simulator sim;
    core::ExecutionEngine engine(sim, c.workload.dag, c.model, c.pool);
    engine.submit(plan);
    sim.run();
    benchmark::DoNotOptimize(engine.makespan());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(c.workload.dag.job_count()));
}
BENCHMARK(BM_EngineReplay)->Arg(20)->Arg(100)->Arg(500);

void BM_EventQueueChurn(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  RngStream rng(7);
  std::vector<double> times(n);
  for (double& t : times) {
    t = rng.uniform(0.0, 1000.0);
  }
  for (auto _ : state) {
    sim::EventQueue queue;
    int fired = 0;
    for (const double t : times) {
      queue.push(t, [&fired] { ++fired; });
    }
    while (!queue.empty()) {
      queue.pop().action();
    }
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_EventQueueChurn)->Arg(1000)->Arg(100000);

}  // namespace

BENCHMARK_MAIN();
