// EXP-S3 — pump scaling: per-machine-event work versus workflow count.
//
// Before the session-owned ResourceLedger, the contention floor of every
// acquire was computed by polling busy_until() on EVERY registered
// workflow — so each machine event cost O(session workflows) even when
// the machine's queue held one entry, and a stream's total work grew
// quadratically. The ledger keeps the committed horizon per resource, so
// an acquire costs O(queue on that resource) regardless of how many
// workflows share the session.
//
// The bench holds total work constant (kTotalJobs chained jobs split over
// W workflows, each executing on its own dedicated machine — zero queue
// overlap) while W grows. Every job start still runs the full
// acquire/commit path against a session with W registered workflows.
// Under the ledger, wall time per executed event stays flat as W grows;
// under the participant-scan design it grew ~linearly. The self-check
// fails the bench when the largest W costs more than kMaxRatio x the
// smallest per event — linear growth would blow well past it.
//
// The engines are driven directly with precomputed schedules (no HEFT
// pass), so the measurement isolates the executor/session hot path.
//
// Extra knobs: --smoke (quarter-size), --json=path.
#include <cstdlib>
#include <iostream>
#include <vector>

#include "bench_util.h"
#include "core/execution_engine.h"
#include "core/schedule.h"
#include "core/session.h"
#include "dag/dag.h"
#include "grid/machine_model.h"
#include "grid/resource_pool.h"

using namespace aheft;

namespace {

struct ScalingPoint {
  std::size_t workflows = 0;
  std::size_t jobs_per_workflow = 0;
  std::uint64_t events = 0;
  double seconds = 0.0;
  [[nodiscard]] double micros_per_event() const {
    return events == 0 ? 0.0 : seconds * 1e6 / static_cast<double>(events);
  }
};

/// One measured configuration: W chains of K jobs, machine w dedicated to
/// workflow w (its costs are 1 there and 100 elsewhere, so every plan
/// stays on its own machine and the queues never overlap).
ScalingPoint run_point(std::size_t workflows, std::size_t jobs) {
  grid::ResourcePool pool;
  for (std::size_t w = 0; w < workflows; ++w) {
    pool.add(grid::Resource{.name = "m" + std::to_string(w)});
  }

  std::vector<dag::Dag> dags;
  std::vector<grid::MachineModel> models;
  dags.reserve(workflows);
  models.reserve(workflows);
  for (std::size_t w = 0; w < workflows; ++w) {
    dags.emplace_back("chain" + std::to_string(w));
    dag::Dag& dag = dags.back();
    for (std::size_t i = 0; i < jobs; ++i) {
      dag.add_job("j" + std::to_string(i));
      if (i > 0) {
        dag.add_edge(static_cast<dag::JobId>(i - 1),
                     static_cast<dag::JobId>(i), 0.0);
      }
    }
    dag.finalize();
    models.emplace_back(jobs, workflows);
    for (dag::JobId i = 0; i < jobs; ++i) {
      for (grid::ResourceId r = 0;
           r < static_cast<grid::ResourceId>(workflows); ++r) {
        models.back().set_compute_cost(
            i, r, r == static_cast<grid::ResourceId>(w) ? 1.0 : 100.0);
      }
    }
  }

  core::SessionEnvironment env;
  env.pool = &pool;
  core::SimulationSession session(env);
  std::vector<std::unique_ptr<core::ExecutionEngine>> engines;
  engines.reserve(workflows);
  Stopwatch watch;
  for (std::size_t w = 0; w < workflows; ++w) {
    engines.push_back(std::make_unique<core::ExecutionEngine>(
        session, dags[w], models[w]));
    core::Schedule plan(jobs);
    for (dag::JobId i = 0; i < jobs; ++i) {
      plan.assign(core::Assignment{i, static_cast<grid::ResourceId>(w),
                                   static_cast<sim::Time>(i),
                                   static_cast<sim::Time>(i + 1)});
    }
    engines.back()->submit(plan);
  }
  session.run();

  ScalingPoint point;
  point.workflows = workflows;
  point.jobs_per_workflow = jobs;
  point.seconds = watch.seconds();
  point.events = session.simulator().executed_events();
  for (const auto& engine : engines) {
    if (!engine->finished()) {
      std::cerr << "pump-scaling workflow did not finish\n";
      std::exit(1);
    }
  }
  return point;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchOptions options = bench::parse_options(argc, argv);
  const ArgParser args(argc, argv);
  if (args.has("smoke")) {
    options.scale = Scale::kSmoke;
  }
  const std::size_t total_jobs =
      options.scale == Scale::kSmoke ? 8192 : 32768;
  const std::vector<std::size_t> workflow_counts = {4, 16, 64};
  constexpr double kMaxRatio = 3.0;

  bench::print_header(
      "Pump scaling: per-machine-event work vs workflow count", options,
      workflow_counts.size());
  bench::JsonReport report("bench_pump_scaling", options);

  std::vector<ScalingPoint> points;
  for (const std::size_t w : workflow_counts) {
    // Best of two runs: absorbs one-off allocator/cache noise without
    // hiding real asymptotic growth.
    ScalingPoint best = run_point(w, total_jobs / w);
    const ScalingPoint second = run_point(w, total_jobs / w);
    if (second.seconds < best.seconds) {
      best = second;
    }
    points.push_back(best);
    report.add_row(
        {{"workflows", std::to_string(w)}},
        {{"events", static_cast<double>(best.events)},
         {"seconds", best.seconds},
         {"micros_per_event", best.micros_per_event()}});
  }

  AsciiTable table({"workflows", "jobs/workflow", "events", "seconds",
                    "us/event"});
  for (const ScalingPoint& p : points) {
    table.add_row({std::to_string(p.workflows),
                   std::to_string(p.jobs_per_workflow),
                   std::to_string(p.events),
                   format_double(p.seconds, 3),
                   format_double(p.micros_per_event(), 3)});
  }
  std::cout << table.to_string() << "\n";
  report.write_if_requested(options);

  const double first = points.front().micros_per_event();
  const double last = points.back().micros_per_event();
  const double ratio = first > 0.0 ? last / first : 0.0;
  const bool flat = ratio <= kMaxRatio;
  std::cout << "pump-scaling self-check: us/event at "
            << points.back().workflows << " workflows is "
            << format_double(ratio, 2) << "x the " << points.front().workflows
            << "-workflow cost (bound " << format_double(kMaxRatio, 1)
            << "x; participant-scan scaling would be ~"
            << points.back().workflows / points.front().workflows
            << "x) -> " << (flat ? "PASS" : "FAIL") << "\n";
  return flat ? 0 : 1;
}
