// EXP-S3 — pump scaling: per-machine-event work versus workflow count,
// and sharded-simulator throughput versus shard count.
//
// Phase 1 (flat-cost): before the session-owned ResourceLedger, the
// contention floor of every acquire was computed by polling busy_until()
// on EVERY registered workflow — so each machine event cost O(session
// workflows) even when the machine's queue held one entry, and a
// stream's total work grew quadratically. The ledger keeps the committed
// horizon per resource, so an acquire costs O(queue on that resource)
// regardless of how many workflows share the session. The bench holds
// total work constant (kTotalJobs chained jobs split over W workflows,
// each executing on its own dedicated machine — zero queue overlap)
// while W grows; the self-check fails when the largest W costs more than
// kMaxRatio x the smallest per event.
//
// Phase 2 (sharded throughput): the same dedicated-machine chains at
// 256/1k/4k workflows, swept over SessionEnvironment::shards, the fixed
// --epoch-width axis, and a sinks arm (trace recorder + performance
// history fed through the per-shard stamped sinks, with a completion
// hook recording every job — sharded AHEFT's write path). Rows report
// events, wall seconds, events/sec, plus the barrier-count metrics
// (epochs, staged_messages, staging_high_water). On a machine with
// >= 8 cores and an axis containing shards=1 and shards=8, self-checks
// fail when 8 shards deliver less than kMinSpeedup x the serial
// throughput at the largest workflow count — once with sinks off and
// once with the history arm on.
//
// Phase 3 (sparse stream, adaptive epoch width): each shard's workflows
// are staggered into a disjoint time window, so a width=0 run pays one
// barrier per distinct event time while the adaptive lookahead (widen
// toward the second-smallest next-event time across shards) drains a
// whole window per epoch. The self-check fails unless adaptive runs
// strictly fewer epochs than width=0 AND the merged trace/history sinks
// are byte-identical between the two runs.
//
// The engines are driven directly with precomputed schedules (no HEFT
// pass), so the measurement isolates the executor/session hot path.
//
// Extra knobs: --smoke (quarter-size), --shards=a,b,c,
// --epoch-width=a,b,c, --json=path.
#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "core/execution_engine.h"
#include "core/schedule.h"
#include "core/session.h"
#include "dag/dag.h"
#include "grid/history.h"
#include "grid/machine_model.h"
#include "grid/resource_pool.h"
#include "sim/trace.h"
#include "support/thread_pool.h"

using namespace aheft;

namespace {

struct ScalingPoint {
  std::size_t workflows = 0;
  std::size_t jobs_per_workflow = 0;
  std::size_t shards = 1;
  double epoch_width = 0.0;
  bool sinks = false;
  std::uint64_t events = 0;
  std::uint64_t epochs = 0;
  std::uint64_t staged_messages = 0;
  std::size_t staging_high_water = 0;
  double seconds = 0.0;
  [[nodiscard]] double micros_per_event() const {
    return events == 0 ? 0.0 : seconds * 1e6 / static_cast<double>(events);
  }
  [[nodiscard]] double events_per_sec() const {
    return seconds <= 0.0 ? 0.0 : static_cast<double>(events) / seconds;
  }
};

/// The merged sink contents of a sinks-on run, for byte-identity checks.
struct SinkCapture {
  std::vector<sim::TraceInterval> trace;
  std::vector<grid::PerformanceHistoryRepository::Observation> history;
};

bool captures_equal(const SinkCapture& a, const SinkCapture& b) {
  if (a.trace.size() != b.trace.size() ||
      a.history.size() != b.history.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.trace.size(); ++i) {
    const sim::TraceInterval& x = a.trace[i];
    const sim::TraceInterval& y = b.trace[i];
    if (x.kind != y.kind || x.job != y.job || x.consumer != y.consumer ||
        x.resource != y.resource || x.start != y.start || x.end != y.end) {
      return false;
    }
  }
  for (std::size_t i = 0; i < a.history.size(); ++i) {
    const auto& x = a.history[i];
    const auto& y = b.history[i];
    if (x.operation != y.operation || x.resource != y.resource ||
        x.smoothed != y.smoothed || x.count != y.count) {
      return false;
    }
  }
  return true;
}

/// One measured configuration: W chains of K jobs, machine w dedicated to
/// workflow w (its costs are 1 there and 100 elsewhere, so every plan
/// stays on its own machine and the queues never overlap).
ScalingPoint run_point(std::size_t workflows, std::size_t jobs) {
  grid::ResourcePool pool;
  for (std::size_t w = 0; w < workflows; ++w) {
    pool.add(grid::Resource{.name = "m" + std::to_string(w)});
  }

  std::vector<dag::Dag> dags;
  std::vector<grid::MachineModel> models;
  dags.reserve(workflows);
  models.reserve(workflows);
  for (std::size_t w = 0; w < workflows; ++w) {
    dags.emplace_back("chain" + std::to_string(w));
    dag::Dag& dag = dags.back();
    for (std::size_t i = 0; i < jobs; ++i) {
      dag.add_job("j" + std::to_string(i));
      if (i > 0) {
        dag.add_edge(static_cast<dag::JobId>(i - 1),
                     static_cast<dag::JobId>(i), 0.0);
      }
    }
    dag.finalize();
    models.emplace_back(jobs, workflows);
    for (dag::JobId i = 0; i < jobs; ++i) {
      for (grid::ResourceId r = 0;
           r < static_cast<grid::ResourceId>(workflows); ++r) {
        models.back().set_compute_cost(
            i, r, r == static_cast<grid::ResourceId>(w) ? 1.0 : 100.0);
      }
    }
  }

  core::SessionEnvironment env;
  env.pool = &pool;
  core::SimulationSession session(env);
  std::vector<std::unique_ptr<core::ExecutionEngine>> engines;
  engines.reserve(workflows);
  Stopwatch watch;
  for (std::size_t w = 0; w < workflows; ++w) {
    engines.push_back(std::make_unique<core::ExecutionEngine>(
        session, dags[w], models[w]));
    core::Schedule plan(jobs);
    for (dag::JobId i = 0; i < jobs; ++i) {
      plan.assign(core::Assignment{i, static_cast<grid::ResourceId>(w),
                                   static_cast<sim::Time>(i),
                                   static_cast<sim::Time>(i + 1)});
    }
    engines.back()->submit(plan);
  }
  session.run();

  ScalingPoint point;
  point.workflows = workflows;
  point.jobs_per_workflow = jobs;
  point.seconds = watch.seconds();
  point.events = session.executed_events();
  for (const auto& engine : engines) {
    if (!engine->finished()) {
      std::cerr << "pump-scaling workflow did not finish\n";
      std::exit(1);
    }
  }
  return point;
}

/// One sharded-throughput configuration: W chains of K unit jobs, one
/// dedicated machine per workflow, swept over the shard count. All
/// workflows share one chain DAG and one all-ones cost model (plans are
/// explicit, so per-workflow cost asymmetry buys nothing here and a
/// dense per-workflow model at 4096 machines would cost gigabytes);
/// both are const, so shard threads read them race-free. Each engine is
/// built and submitted under its machine's home-shard binding —
/// construction captures the shard's simulator, masked pool, and
/// (with `sinks` on) the shard's private stamped trace sink; submit()'s
/// synchronous first pump acquires on the shard's ledger.
///
/// `stagger` > 0 gives every workflow's *first* job a compute cost of
/// stagger x (its machine's shard index + 1), so each shard's chain
/// activity lands in a disjoint time window — the sparse-stream shape
/// where the adaptive epoch width wins (the engine is work-conserving,
/// so staggering must come from simulated work, not plan times). With
/// `sinks` on, a completion hook records every job into the session's
/// per-shard history delta (the sharded AHEFT write path) and `capture`
/// (when non-null) receives the merged trace/history contents.
ScalingPoint run_wide_point(std::size_t workflows, std::size_t jobs,
                            std::size_t shards, ThreadPool* workers,
                            bool sinks, const sim::EpochConfig& epoch,
                            sim::Time stagger, SinkCapture* capture) {
  grid::ResourcePool pool;
  for (std::size_t w = 0; w < workflows; ++w) {
    pool.add(grid::Resource{.name = "m" + std::to_string(w)});
  }

  dag::Dag chain("chain");
  for (std::size_t i = 0; i < jobs; ++i) {
    chain.add_job("j" + std::to_string(i));
    if (i > 0) {
      chain.add_edge(static_cast<dag::JobId>(i - 1),
                     static_cast<dag::JobId>(i), 0.0);
    }
  }
  chain.finalize();

  sim::TraceRecorder trace;
  grid::PerformanceHistoryRepository history;
  core::SessionEnvironment env;
  env.pool = &pool;
  env.shards = shards;
  env.shard_workers = shards > 1 ? workers : nullptr;
  env.epoch = epoch;
  if (sinks) {
    env.trace = &trace;
    env.history = &history;
  }
  core::SimulationSession session(env);

  grid::MachineModel model(jobs, workflows);
  for (dag::JobId i = 0; i < jobs; ++i) {
    for (grid::ResourceId r = 0;
         r < static_cast<grid::ResourceId>(workflows); ++r) {
      const sim::Time lead =
          stagger > 0.0
              ? stagger * static_cast<sim::Time>(session.shard_of(r) + 1)
              : 1.0;
      model.set_compute_cost(i, r, i == 0 ? lead : 1.0);
    }
  }

  std::vector<std::unique_ptr<core::ExecutionEngine>> engines;
  engines.reserve(workflows);
  Stopwatch watch;
  for (std::size_t w = 0; w < workflows; ++w) {
    const auto machine = static_cast<grid::ResourceId>(w);
    const std::size_t home = session.shard_of(machine);
    const auto binding = session.bind_shard(home);
    engines.push_back(
        std::make_unique<core::ExecutionEngine>(session, chain, model));
    if (sinks) {
      // The hook fires on the shard's drain thread; session.history()
      // resolves to that shard's private delta there.
      engines.back()->set_completion_hook(
          [&session, &chain](dag::JobId job, grid::ResourceId resource,
                             sim::Time start, sim::Time end) {
            session.history()->record(chain.job(job).operation, resource,
                                     end - start);
          });
    }
    const sim::Time lead =
        stagger > 0.0 ? stagger * static_cast<sim::Time>(home + 1) : 1.0;
    core::Schedule plan(jobs);
    for (dag::JobId i = 0; i < jobs; ++i) {
      const sim::Time start =
          i == 0 ? 0.0 : lead + static_cast<sim::Time>(i - 1);
      const sim::Time end = lead + static_cast<sim::Time>(i);
      plan.assign(core::Assignment{i, machine, start, end});
    }
    engines.back()->submit(plan);
  }
  session.run();

  ScalingPoint point;
  point.workflows = workflows;
  point.jobs_per_workflow = jobs;
  point.shards = session.shard_count();
  point.epoch_width = epoch.width;
  point.sinks = sinks;
  point.seconds = watch.seconds();
  point.events = session.executed_events();
  point.epochs = session.sharded().epochs();
  point.staged_messages = session.sharded().staged_messages();
  point.staging_high_water = session.sharded().staging_high_water();
  for (const auto& engine : engines) {
    if (!engine->finished()) {
      std::cerr << "pump-scaling sharded workflow did not finish\n";
      std::exit(1);
    }
  }
  if (capture != nullptr) {
    capture->trace = trace.intervals();
    capture->history = history.snapshot();
  }
  return point;
}

/// Best of two runs: absorbs one-off allocator/cache noise without
/// hiding real asymptotic growth.
template <typename RunFn>
ScalingPoint best_of_two(const RunFn& run) {
  ScalingPoint best = run();
  const ScalingPoint second = run();
  if (second.seconds < best.seconds) {
    best = second;
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchOptions options = bench::parse_options(argc, argv);
  const ArgParser args(argc, argv);
  if (args.has("smoke")) {
    options.scale = Scale::kSmoke;
  }
  const bool smoke = options.scale == Scale::kSmoke;
  const std::size_t total_jobs = smoke ? 8192 : 32768;
  const std::vector<std::size_t> workflow_counts = {4, 16, 64};
  constexpr double kMaxRatio = 3.0;
  // Sharded phase axes: stream widths from the ROADMAP's
  // thousands-of-streams target, shard counts and fixed epoch widths
  // from the CLI.
  const std::vector<std::size_t> wide_counts =
      smoke ? std::vector<std::size_t>{256, 1024}
            : std::vector<std::size_t>{256, 1024, 4096};
  const std::size_t wide_jobs = smoke ? 4 : 16;
  const std::vector<std::size_t> shard_counts =
      bench::parse_shards(args, {1, 8});
  const std::vector<double> width_axis =
      bench::parse_epoch_widths(args, {0.0});
  constexpr double kMinSpeedup = 2.0;

  bench::print_header(
      "Pump scaling: per-machine-event work vs workflow count", options,
      workflow_counts.size() +
          wide_counts.size() * shard_counts.size() * width_axis.size() * 2);
  bench::JsonReport report("bench_pump_scaling", options);

  std::vector<ScalingPoint> points;
  for (const std::size_t w : workflow_counts) {
    const ScalingPoint best =
        best_of_two([&] { return run_point(w, total_jobs / w); });
    points.push_back(best);
    report.add_row(
        {{"workflows", std::to_string(w)}},
        {{"events", static_cast<double>(best.events)},
         {"seconds", best.seconds},
         {"micros_per_event", best.micros_per_event()}});
  }

  AsciiTable table({"workflows", "jobs/workflow", "events", "seconds",
                    "us/event"});
  for (const ScalingPoint& p : points) {
    table.add_row({std::to_string(p.workflows),
                   std::to_string(p.jobs_per_workflow),
                   std::to_string(p.events),
                   format_double(p.seconds, 3),
                   format_double(p.micros_per_event(), 3)});
  }
  std::cout << table.to_string() << "\n";

  // Phase 2: sharded throughput at stream scale, with and without the
  // per-shard sink machinery (trace + history through the barrier merge).
  ThreadPool workers(options.threads);
  std::vector<ScalingPoint> wide_points;
  for (const std::size_t w : wide_counts) {
    for (const std::size_t shards : shard_counts) {
      for (const double width : width_axis) {
        for (const bool sinks : {false, true}) {
          const sim::EpochConfig epoch{width, false, sim::kTimeInfinity};
          const ScalingPoint best = best_of_two([&] {
            return run_wide_point(w, wide_jobs, shards, &workers, sinks,
                                  epoch, 0.0, nullptr);
          });
          wide_points.push_back(best);
          report.add_row(
              {{"workflows", std::to_string(w)},
               {"shards", std::to_string(best.shards)},
               {"epoch_width", format_double(width, 3)},
               {"sinks", sinks ? "on" : "off"}},
              {{"events", static_cast<double>(best.events)},
               {"seconds", best.seconds},
               {"events_per_sec", best.events_per_sec()},
               {"micros_per_event", best.micros_per_event()},
               {"epochs", static_cast<double>(best.epochs)},
               {"staged_messages",
                static_cast<double>(best.staged_messages)},
               {"staging_high_water",
                static_cast<double>(best.staging_high_water)}});
        }
      }
    }
  }

  AsciiTable wide_table({"workflows", "shards", "width", "sinks", "events",
                         "epochs", "seconds", "events/sec"});
  for (const ScalingPoint& p : wide_points) {
    wide_table.add_row({std::to_string(p.workflows),
                        std::to_string(p.shards),
                        format_double(p.epoch_width, 1),
                        p.sinks ? "on" : "off",
                        std::to_string(p.events),
                        std::to_string(p.epochs),
                        format_double(p.seconds, 3),
                        format_double(p.events_per_sec(), 0)});
  }
  std::cout << "sharded throughput (lock-step epochs on "
            << workers.thread_count() << " pool threads):\n"
            << wide_table.to_string() << "\n";

  // Phase 3: sparse stream — each shard's workflows staggered into a
  // disjoint window. Adaptive width must collapse the barrier count
  // without changing one byte of the merged sinks.
  const std::size_t sparse_workflows = 64;
  const std::size_t sparse_jobs = 32;
  const std::size_t sparse_shards = 4;
  const sim::Time kStagger = 1000.0;
  SinkCapture fixed_capture;
  SinkCapture adaptive_capture;
  const ScalingPoint fixed_point = run_wide_point(
      sparse_workflows, sparse_jobs, sparse_shards, &workers, true,
      sim::EpochConfig{0.0, false, sim::kTimeInfinity}, kStagger,
      &fixed_capture);
  const ScalingPoint adaptive_point = run_wide_point(
      sparse_workflows, sparse_jobs, sparse_shards, &workers, true,
      sim::EpochConfig{0.0, true, sim::kTimeInfinity}, kStagger,
      &adaptive_capture);
  for (const ScalingPoint* p : {&fixed_point, &adaptive_point}) {
    report.add_row(
        {{"phase", "sparse"},
         {"mode", p == &fixed_point ? "fixed" : "adaptive"},
         {"workflows", std::to_string(p->workflows)},
         {"shards", std::to_string(p->shards)}},
        {{"events", static_cast<double>(p->events)},
         {"seconds", p->seconds},
         {"epochs", static_cast<double>(p->epochs)},
         {"staged_messages", static_cast<double>(p->staged_messages)},
         {"staging_high_water",
          static_cast<double>(p->staging_high_water)}});
  }
  report.write_if_requested(options);

  const double first = points.front().micros_per_event();
  const double last = points.back().micros_per_event();
  const double ratio = first > 0.0 ? last / first : 0.0;
  const bool flat = ratio <= kMaxRatio;
  std::cout << "pump-scaling self-check: us/event at "
            << points.back().workflows << " workflows is "
            << format_double(ratio, 2) << "x the " << points.front().workflows
            << "-workflow cost (bound " << format_double(kMaxRatio, 1)
            << "x; participant-scan scaling would be ~"
            << points.back().workflows / points.front().workflows
            << "x) -> " << (flat ? "PASS" : "FAIL") << "\n";

  // Shard speedup self-checks at the largest workflow count and the first
  // epoch width, sinks off and sinks on (the history arm): enforced only
  // where they can physically hold — the axis must compare 1 and 8 shards
  // and the machine must have >= 8 cores for 8 shards to run
  // concurrently.
  bool sharded_ok = true;
  const bool axis_has_pair =
      std::find(shard_counts.begin(), shard_counts.end(),
                std::size_t{1}) != shard_counts.end() &&
      std::find(shard_counts.begin(), shard_counts.end(),
                std::size_t{8}) != shard_counts.end();
  const unsigned cores = std::thread::hardware_concurrency();
  for (const bool sinks : {false, true}) {
    double serial_eps = 0.0;
    double sharded_eps = 0.0;
    for (const ScalingPoint& p : wide_points) {
      if (p.workflows != wide_counts.back() || p.sinks != sinks ||
          p.epoch_width != width_axis.front()) {
        continue;
      }
      if (p.shards == 1) {
        serial_eps = p.events_per_sec();
      } else if (p.shards == 8) {
        sharded_eps = p.events_per_sec();
      }
    }
    const char* arm = sinks ? "history arm" : "sinks off";
    if (axis_has_pair && cores >= 8) {
      const double speedup =
          serial_eps > 0.0 ? sharded_eps / serial_eps : 0.0;
      const bool ok = speedup >= kMinSpeedup;
      sharded_ok = sharded_ok && ok;
      std::cout << "shard-speedup self-check (" << arm
                << "): 8 shards deliver " << format_double(speedup, 2)
                << "x the serial events/sec at " << wide_counts.back()
                << " workflows (bound " << format_double(kMinSpeedup, 1)
                << "x on " << cores << " cores) -> "
                << (ok ? "PASS" : "FAIL") << "\n";
    } else {
      std::cout << "shard-speedup self-check (" << arm
                << "): SKIP (needs --shards covering 1 and 8, and >= 8 "
                   "cores; axis pair="
                << (axis_has_pair ? "yes" : "no") << ", cores=" << cores
                << ")\n";
    }
  }

  // Adaptive-width self-check: logical, so no core-count gate — a null
  // or undersized pool drains epochs inline with identical semantics.
  const bool fewer_epochs = adaptive_point.epochs < fixed_point.epochs;
  const bool identical = captures_equal(fixed_capture, adaptive_capture) &&
                         fixed_point.events == adaptive_point.events;
  const bool adaptive_ok = fewer_epochs && identical;
  std::cout << "adaptive-width self-check: sparse stream ran "
            << adaptive_point.epochs << " epochs adaptive vs "
            << fixed_point.epochs << " at width=0 (want strictly fewer), "
            << "merged sinks " << (identical ? "byte-identical" : "DIFFER")
            << " -> " << (adaptive_ok ? "PASS" : "FAIL") << "\n";

  return flat && sharded_ok && adaptive_ok ? 0 : 1;
}
