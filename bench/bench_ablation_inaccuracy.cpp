// EXP-A2 — ablation on estimation accuracy (ours; motivated by the
// Sakellariou–Zhao policy [14] the paper contrasts with).
//
// The paper assumes perfect cost estimates (§4.1). Here the Planner's
// predictor is off by a uniform ±error factor while the grid behaves per
// the ground truth. Variants: plain AHEFT on noisy estimates; AHEFT that
// also reacts to performance-variance events; and AHEFT whose predictor
// blends in the Performance History Repository (the Fig. 1 feedback loop).
#include <iostream>

#include "bench_util.h"
#include "core/heft.h"
#include "core/strategy.h"
#include "grid/predictor.h"
#include "support/rng.h"
#include "workloads/random_dag.h"
#include "workloads/scenario.h"

using namespace aheft;

namespace {

struct CaseBundle {
  workloads::Workload workload;
  grid::ResourcePool pool;
  grid::MachineModel model;
};

CaseBundle make_case(std::uint64_t seed) {
  RngStream rng(seed);
  workloads::RandomDagParams params;
  params.jobs = 60;
  params.ccr = 1.0;
  params.out_degree = 0.3;
  RngStream dag_stream = rng.child("dag");
  workloads::Workload w =
      workloads::generate_random_workload(params, dag_stream);
  const workloads::ResourceDynamics dynamics{10, 400.0, 0.2};
  grid::ResourcePool first;
  for (std::size_t i = 0; i < dynamics.initial; ++i) {
    first.add(grid::Resource{});
  }
  const grid::MachineModel probe = workloads::build_machine_model(
      w, dynamics.initial, 0.5, mix64(seed, 5));
  const double horizon =
      core::heft_schedule(w.dag, probe, first).makespan();
  grid::ResourcePool pool = workloads::build_dynamic_pool(dynamics, horizon);
  grid::MachineModel model = workloads::build_machine_model(
      w, pool.universe_size(), 0.5, mix64(seed, 5));
  return CaseBundle{std::move(w), std::move(pool), std::move(model)};
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchOptions options = bench::parse_options(argc, argv);
  std::size_t repeats = options.scale == Scale::kSmoke ? 2 : 10;
  if (options.scale == Scale::kPaper) {
    repeats = 50;
  }
  bench::print_header("Ablation — estimate inaccuracy", options,
                      repeats * 4 * 3);

  AsciiTable table({"estimate error", "plain AHEFT", "+variance reaction",
                    "+history blending", "oracle (error 0)"});
  for (const double error : {0.0, 0.1, 0.2, 0.4}) {
    OnlineStats plain;
    OnlineStats reactive;
    OnlineStats blended;
    OnlineStats oracle;
    for (std::size_t i = 0; i < repeats; ++i) {
      const CaseBundle c = make_case(mix64(options.seed, i));
      const grid::NoisyPredictor noisy(c.model, error, mix64(options.seed, i));

      core::SessionEnvironment env;
      env.pool = &c.pool;
      {  // oracle: perfect estimates
        const core::StrategyOutcome outcome =
            core::run_strategy(core::StrategyKind::kAdaptiveAheft,
                               c.workload.dag, c.model, c.model, env);
        oracle.add(outcome.makespan);
      }
      {  // plain: trusts the wrong numbers, reacts only to pool changes
        const core::StrategyOutcome outcome =
            core::run_strategy(core::StrategyKind::kAdaptiveAheft,
                               c.workload.dag, noisy, c.model, env);
        plain.add(outcome.makespan);
      }
      {  // reacts to observed deviations as well
        core::StrategyConfig config;
        config.planner.react_to_variance = true;
        config.planner.variance_threshold = 0.10;
        const core::StrategyOutcome outcome =
            core::run_strategy(core::StrategyKind::kAdaptiveAheft,
                               c.workload.dag, noisy, c.model, env, config);
        reactive.add(outcome.makespan);
      }
      {  // additionally feeds observations back into the predictor
        core::StrategyConfig config;
        config.planner.react_to_variance = true;
        config.planner.variance_threshold = 0.10;
        grid::PerformanceHistoryRepository history(0.7);
        const grid::HistoryBlendingPredictor predictor(noisy, c.workload.dag,
                                                       history);
        core::SessionEnvironment learning = env;
        learning.history = &history;
        const core::StrategyOutcome outcome = core::run_strategy(
            core::StrategyKind::kAdaptiveAheft, c.workload.dag, predictor,
            c.model, learning, config);
        blended.add(outcome.makespan);
      }
    }
    table.add_row({format_percent(error, 0), format_double(plain.mean(), 0),
                   format_double(reactive.mean(), 0),
                   format_double(blended.mean(), 0),
                   format_double(oracle.mean(), 0)});
  }
  std::cout << table.to_string() << "\n"
            << "Reading: reacting to variance events and learning from the\n"
               "history repository recovers part of the accuracy loss.\n";
  return 0;
}
