// EXP-S2 — contention-policy comparison under multi-DAG workflow streams.
//
// PR 2's stream bench showed that concurrent workflows contend for
// machines; this bench swaps the arbitration deciding who wins. For 1, 4,
// and 16 concurrent workflow instances (bursty arrivals, volatile pool)
// it runs the same stream under each built-in contention policy:
//
//   fcfs        the historical first-pump-wins behavior,
//   priority    strict 4:1 priorities cycled over the instances (odd
//               instances are low priority and may starve — visible in
//               the wait columns),
//   fair-share  stretch fairness (uniform weights here): a workflow
//               stretched well past its own uncontended plan displaces
//               the machine's queue, bounding the worst slowdown.
//
// The closing self-check asserts the fairness contract at the largest
// stream: fair share must strictly improve both the max slowdown and
// Jain's fairness index over FCFS. Since the ledger's two-phase dynamic
// dispatch landed, the contract is asserted for the dynamic strategy as
// well — just-in-time decisions now wait in the ledger queues where
// policies can reorder them, instead of advance-booking instantly.
//
// Extra knobs: --smoke, --streams=a,b,c, --strategy=heft|aheft|dynamic
// (default aheft), --backfill, --json=path (per-policy wait/jain rows at
// full precision, uploaded by CI as the BENCH_stream.json artifact).
#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <vector>

#include "bench_util.h"

using namespace aheft;

namespace {

exp::CaseSpec stream_spec(Scale scale, std::uint64_t master,
                          std::size_t stream_jobs) {
  exp::CaseSpec spec;
  spec.app = exp::AppKind::kRandom;
  spec.size = scale == Scale::kSmoke ? 20 : 40;
  spec.ccr = 1.0;
  spec.out_degree = 0.25;
  spec.dynamics = {8, 300.0, 0.2};
  spec.scenario_source = "bursty";
  spec.bursty.mean_calm = 400.0;
  spec.bursty.mean_burst = 120.0;
  spec.bursty.calm_arrival_mean = 500.0;
  spec.bursty.burst_arrival_mean = 60.0;
  spec.react_to_variance = true;
  spec.horizon_factor = 4.0;
  spec.stream_jobs = stream_jobs;
  // Tighter arrivals than the strategy bench: the policies only separate
  // when several workflows genuinely overlap on the same machines.
  spec.stream_interarrival = scale == Scale::kSmoke ? 60.0 : 100.0;
  spec.seed = exp::case_seed(master, spec, /*instance=*/stream_jobs);
  return spec;
}

struct PolicyRow {
  std::string policy;
  exp::StreamStrategySummary summary;
};

}  // namespace

int main(int argc, char** argv) {
  bench::BenchOptions options = bench::parse_options(argc, argv);
  const ArgParser args(argc, argv);
  if (args.has("smoke")) {
    options.scale = Scale::kSmoke;
  }
  const core::StrategyKind strategy =
      bench::parse_strategy(args, core::StrategyKind::kAdaptiveAheft);

  const std::vector<std::size_t> streams =
      bench::parse_streams(args, {1, 4, 16});

  bench::print_header("Contention policies under multi-DAG streams (" +
                          core::to_string(strategy) + ")",
                      options, streams.size() * 3);
  bench::JsonReport report("bench_fairness_policies", options);

  bool fairness_checked = false;
  bool fairness_ok = true;
  for (const std::size_t n : streams) {
    std::vector<PolicyRow> rows;
    for (const core::ContentionPolicyKind kind :
         {core::ContentionPolicyKind::kFcfs,
          core::ContentionPolicyKind::kPriority,
          core::ContentionPolicyKind::kFairShare}) {
      exp::CaseSpec spec = bench::with_cli_environment(
          stream_spec(options.scale, options.seed, n), options);
      spec.contention_policy = core::to_string(kind);
      spec.backfill = options.backfill;
      spec.contention_aware = options.contention_aware;
      if (kind == core::ContentionPolicyKind::kPriority) {
        // Strict priorities need distinct ranks to differ from FCFS;
        // alternate high/low so half the stream may starve (that is the
        // policy's contract — the wait columns price it).
        spec.stream_priorities = {4.0, 1.0};
      }
      const exp::CaseEnvironment env = exp::build_case_environment(spec);
      const exp::StreamSetup setup = exp::build_stream_setup(spec, env);
      rows.push_back(PolicyRow{
          spec.contention_policy,
          exp::run_stream_strategy(spec, env, setup, strategy)});
      report.add_stream_row(
          {{"strategy", core::to_string(strategy)},
           {"policy", rows.back().policy},
           {"streams", std::to_string(n)}},
          rows.back().summary);
    }

    AsciiTable table({"policy", "mean slowdown", "max slowdown",
                      "mean wait", "max wait", "jain", "throughput/1k"});
    for (const PolicyRow& row : rows) {
      const exp::StreamStrategySummary& s = row.summary;
      table.add_row({row.policy + (row.policy == "priority" ? " (4:1)" : ""),
                     format_double(s.mean_slowdown, 2),
                     format_double(s.max_slowdown, 2),
                     format_double(s.mean_wait, 1),
                     format_double(s.max_wait, 1),
                     format_double(s.jain_fairness, 3),
                     format_double(s.throughput * 1000.0, 3)});
    }
    std::cout << n << " concurrent workflow(s):\n"
              << table.to_string() << "\n";

    // The fairness contract is asserted at the most contended stream of
    // the axis (16 by default) for every strategy — including dynamic,
    // whose two-phase ledger dispatch keeps its demand queued where the
    // policy can reorder it: fair share must beat FCFS on both the worst
    // slowdown and Jain's index. Calibrated for the default planning
    // mode: under --contention-aware the plans themselves avoid most of
    // the contention fair share exists to repair (FCFS max slowdown
    // drops ~2x), so the strict-improvement bar is not asserted there.
    if (!options.contention_aware &&
        n == *std::max_element(streams.begin(), streams.end()) && n > 1) {
      const exp::StreamStrategySummary& fcfs = rows[0].summary;
      const exp::StreamStrategySummary& fair = rows[2].summary;
      fairness_checked = true;
      fairness_ok = fair.max_slowdown < fcfs.max_slowdown &&
                    fair.jain_fairness > fcfs.jain_fairness;
      std::cout << "fairness self-check (" << n << " workflows, "
                << core::to_string(strategy) << "): "
                << "fair-share max slowdown "
                << format_double(fair.max_slowdown, 4) << " vs fcfs "
                << format_double(fcfs.max_slowdown, 4) << ", jain "
                << format_double(fair.jain_fairness, 5) << " vs "
                << format_double(fcfs.jain_fairness, 5) << " -> "
                << (fairness_ok ? "PASS" : "FAIL") << "\n";
    }
  }
  report.write_if_requested(options);
  if (fairness_checked && !fairness_ok) {
    return 1;
  }
  return 0;
}
