// EXP-F5 — the paper's worked example (Figs. 4 and 5).
//
// Reproduces: the static HEFT schedule of Fig. 5(a) (makespan 80) and the
// AHEFT reschedule of Fig. 5(b) when r4 joins at t=15 (makespan 76).
// The 76-unit schedule requires one near-tie order swap on top of strict
// upward-rank order (see DESIGN.md); the bench shows both the plain greedy
// candidate (which the planner rightly declines) and the explored one.
#include <iostream>

#include "bench_util.h"
#include "core/heft.h"
#include "core/strategy.h"
#include "workloads/sample.h"

using namespace aheft;

int main(int argc, char** argv) {
  const bench::BenchOptions options = bench::parse_options(argc, argv);
  bench::print_header("Fig. 4/5 worked example (10-job sample DAG)", options,
                      1);

  const workloads::SampleScenario scenario = workloads::sample_scenario(15.0);

  const core::Schedule heft =
      core::heft_schedule(scenario.dag, scenario.model, scenario.pool);
  std::cout << "HEFT over {r1,r2,r3} — paper Fig. 5(a):\n"
            << heft.gantt(scenario.dag, scenario.pool)
            << "makespan = " << format_double(heft.makespan(), 1)
            << "   (paper: 80)\n\n";

  auto run_aheft = [&](std::size_t order_candidates,
                       core::RunningJobPolicy running,
                       core::TransferPolicy transfers) {
    core::StrategyConfig config;
    config.planner.scheduler.order_candidates = order_candidates;
    config.planner.scheduler.running_policy = running;
    config.planner.scheduler.transfer_policy = transfers;
    sim::TraceRecorder trace;
    core::SessionEnvironment env;
    env.pool = &scenario.pool;
    env.trace = &trace;
    const core::StrategyOutcome result =
        core::run_strategy(core::StrategyKind::kAdaptiveAheft, scenario.dag,
                           scenario.model, scenario.model, env, config);
    return std::make_pair(result, std::move(trace));
  };

  AsciiTable table({"variant", "makespan", "adopted", "paper"});
  {
    const auto [result, trace] =
        run_aheft(0, core::RunningJobPolicy::kKeepRunning,
                  core::TransferPolicy::kRetransmitFromClock);
    table.add_row({"AHEFT greedy, strict transfers (Eq. 1 literal)",
                   format_double(result.makespan, 1),
                   std::to_string(result.adoptions), "-"});
  }
  {
    // Pre-staged transfers place n5 on r4 at [20,34) exactly as the figure
    // draws it, but strict rank order then sends n9 to r1 and the greedy
    // candidate worsens to 87 — which the adoption filter declines.
    const auto [result, trace] =
        run_aheft(0, core::RunningJobPolicy::kKeepRunning,
                  core::TransferPolicy::kPrestagedArrivals);
    table.add_row({"AHEFT greedy, pre-staged transfers",
                   format_double(result.makespan, 1),
                   std::to_string(result.adoptions), "-"});
  }
  {
    const auto [result, trace] =
        run_aheft(8, core::RunningJobPolicy::kRestartable,
                  core::TransferPolicy::kRetransmitFromClock);
    table.add_row({"AHEFT explored, restartable running jobs",
                   format_double(result.makespan, 1),
                   std::to_string(result.adoptions), "-"});
  }
  const auto [result, trace] =
      run_aheft(8, core::RunningJobPolicy::kKeepRunning,
                core::TransferPolicy::kRetransmitFromClock);
  table.add_row({"AHEFT explored, keep-running (reaches Fig. 5b)",
                 format_double(result.makespan, 1),
                 std::to_string(result.adoptions), "76"});
  std::cout << "AHEFT with r4 arriving at t=15:\n" << table.to_string()
            << "\n";

  std::vector<std::string> job_names;
  std::vector<std::string> resource_names;
  for (dag::JobId i = 0; i < scenario.dag.job_count(); ++i) {
    job_names.push_back(scenario.dag.job(i).name);
  }
  for (const grid::Resource& r : scenario.pool.all()) {
    resource_names.push_back(r.name);
  }
  std::cout << "Realized execution — paper Fig. 5(b):\n"
            << trace.gantt(job_names, resource_names)
            << "realized makespan = " << format_double(result.makespan, 1)
            << "   (paper: 76)\n";
  return 0;
}
