// EXP-R0 — §4.2 random-DAG study, overall averages.
//
// Paper (500,000 cases over the Table 2 grid): average makespans
// HEFT 4075, AHEFT 3911, dynamic Min-Min 12352 — i.e. both static plans
// beat the just-in-time baseline by ~3x, and AHEFT edges out HEFT.
// Absolute values depend on the unpublished cost scale; the orderings and
// ratios are the reproduction target.
#include <iostream>

#include "bench_util.h"
#include "exp/paper_ref.h"

using namespace aheft;

int main(int argc, char** argv) {
  const bench::BenchOptions options = bench::parse_options(argc, argv);
  std::vector<exp::CaseSpec> specs =
      exp::build_random_sweep(options.scale, options.seed,
                              /*run_dynamic=*/true);
  bench::print_header("Random-DAG overall averages (paper §4.2)", options,
                      specs.size());
  const exp::SweepOutcome outcome = bench::run(options, std::move(specs));
  const exp::GroupStats stats = exp::overall(outcome);

  AsciiTable table({"strategy", "avg makespan", "paper", "vs HEFT",
                    "paper ratio"});
  const double heft = stats.heft.mean();
  const double aheft = stats.aheft.mean();
  const double minmin = stats.minmin.mean();
  table.add_row({"HEFT (static)", format_double(heft, 0),
                 format_double(exp::paper::kRandomAvgHeft, 0), "1.00",
                 "1.00"});
  table.add_row({"AHEFT (adaptive)", format_double(aheft, 0),
                 format_double(exp::paper::kRandomAvgAheft, 0),
                 format_double(aheft / heft, 2),
                 format_double(exp::paper::kRandomAvgAheft /
                                   exp::paper::kRandomAvgHeft,
                               2)});
  table.add_row({"Min-Min (dynamic)", format_double(minmin, 0),
                 format_double(exp::paper::kRandomAvgMinMin, 0),
                 format_double(minmin / heft, 2),
                 format_double(exp::paper::kRandomAvgMinMin /
                                   exp::paper::kRandomAvgHeft,
                               2)});
  std::cout << table.to_string() << "\n";
  std::cout << "AHEFT improvement over HEFT: "
            << format_percent(stats.improvement())
            << "   (paper: " << format_percent((4075.0 - 3911.0) / 4075.0)
            << ")\n";
  std::cout << "mean adopted reschedules per case: "
            << format_double(stats.adoptions.mean(), 2) << "\n";
  return 0;
}
