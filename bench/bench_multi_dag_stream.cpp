// EXP-S1 — strategy comparison under multi-DAG workflow streams.
//
// The paper evaluates static HEFT, dynamic Min-Min, and adaptive AHEFT
// on one workflow at a time; a production grid serves many at once. This
// bench submits 1, 4, and 16 concurrent workflow instances (arrival
// records from the `bursty` scenario source, exponential inter-arrival
// gaps) into one shared SimulationSession per strategy, so instances
// contend for the same volatile machines, and reports per-workflow
// makespan statistics, slowdown versus an uncontended solo run of the
// same instance, and aggregate throughput.
//
// The whole table is deterministic for a fixed --seed; the closing
// determinism probe re-runs one stream case and fails the bench if any
// per-workflow makespan moved.
//
// Extra knobs: --smoke (alias for --scale=smoke, used by CI),
// --streams=a,b,c to override the concurrency axis,
// --contention-policy=fcfs|priority|fair-share to swap the session's
// machine arbitration (CI smoke-runs every built-in policy), --backfill,
// --shards=N to run every stream session on N parallel event-loop
// shards, --history to feed each strategy a performance-history
// repository (its merged fingerprint joins the determinism probe — the
// sharded-AHEFT bit-determinism gate CI runs with --shards=2 --history),
// and --json=path (per-strategy makespan/wait/jain rows at full
// precision, uploaded by CI as the BENCH_stream.json artifact).
#include <cstdlib>
#include <iostream>
#include <sstream>

#include "bench_util.h"

using namespace aheft;

namespace {

exp::CaseSpec stream_spec(Scale scale, std::uint64_t master,
                          std::size_t stream_jobs,
                          const std::string& policy, bool backfill,
                          bool contention_aware) {
  exp::CaseSpec spec;
  spec.app = exp::AppKind::kRandom;
  spec.size = scale == Scale::kSmoke ? 20 : 40;
  spec.ccr = 1.0;
  spec.out_degree = 0.25;
  spec.dynamics = {8, 300.0, 0.2};
  spec.scenario_source = "bursty";
  spec.bursty.mean_calm = 400.0;
  spec.bursty.mean_burst = 120.0;
  spec.bursty.calm_arrival_mean = 500.0;
  spec.bursty.burst_arrival_mean = 60.0;
  spec.react_to_variance = true;  // load spikes feed the monitor
  spec.horizon_factor = 4.0;      // arrivals keep coming while streams drain
  spec.stream_jobs = stream_jobs;
  spec.stream_interarrival = scale == Scale::kSmoke ? 150.0 : 250.0;
  if (!policy.empty()) {
    spec.contention_policy = policy;
  }
  spec.backfill = backfill;
  spec.contention_aware = contention_aware;
  spec.seed = exp::case_seed(master, spec, /*instance=*/stream_jobs);
  return spec;
}

void report(std::size_t streams, const exp::StreamCaseResult& result) {
  AsciiTable table({"strategy", "mean makespan", "max makespan",
                    "mean slowdown", "max wait", "jain", "throughput/1k",
                    "adoptions"});
  const auto row = [&](const char* name,
                       const exp::StreamStrategySummary& s) {
    table.add_row({name, format_double(s.mean_makespan, 1),
                   format_double(s.max_makespan, 1),
                   format_double(s.mean_slowdown, 2),
                   format_double(s.max_wait, 1),
                   format_double(s.jain_fairness, 3),
                   format_double(s.throughput * 1000.0, 3),
                   std::to_string(s.adoptions)});
  };
  row("HEFT (static)", result.heft);
  row("Min-Min (dynamic)", result.minmin);
  row("AHEFT (adaptive)", result.aheft);
  std::cout << streams << " concurrent workflow(s), " << result.universe
            << " machines in the universe:\n"
            << table.to_string() << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchOptions options = bench::parse_options(argc, argv);
  const ArgParser args(argc, argv);
  if (args.has("smoke")) {
    options.scale = Scale::kSmoke;
  }

  const std::vector<std::size_t> streams =
      bench::parse_streams(args, {1, 4, 16});
  const std::vector<std::size_t> shard_axis = bench::parse_shards(args, {1});
  if (shard_axis.size() != 1) {
    std::cerr << "bench_multi_dag_stream takes a single --shards value "
                 "(applied to every stream session)\n";
    return 2;
  }
  const std::size_t shards = shard_axis.front();
  const bool use_history = args.has("history");

  const std::string& policy = options.contention_policy;
  bench::print_header(
      "Multi-DAG workflow streams: HEFT vs Min-Min vs AHEFT (policy: " +
          (policy.empty() ? std::string("fcfs") : policy) +
          ", shards: " + std::to_string(shards) +
          (use_history ? ", history on" : "") + ")",
      options, streams.size());
  bench::JsonReport json("bench_multi_dag_stream", options);

  const auto make_spec = [&](std::size_t stream_jobs) {
    exp::CaseSpec spec = bench::with_cli_environment(
        stream_spec(options.scale, options.seed, stream_jobs, policy,
                    options.backfill, options.contention_aware),
        options);
    // Applied after seeding so the generated workload and scenario stay
    // those of the serial, history-free configuration.
    spec.shards = shards;
    spec.use_history = use_history;
    return spec;
  };

  std::vector<exp::StreamCaseResult> results;
  results.reserve(streams.size());
  for (const std::size_t n : streams) {
    results.push_back(exp::run_stream_case(make_spec(n)));
    report(n, results.back());
    const exp::StreamCaseResult& r = results.back();
    const std::string policy_label =
        policy.empty() ? std::string("fcfs") : policy;
    for (const auto& [strategy, summary] :
         {std::pair<const char*, const exp::StreamStrategySummary*>{
              "heft", &r.heft},
          {"dynamic", &r.minmin},
          {"aheft", &r.aheft}}) {
      json.add_stream_row({{"strategy", strategy},
                           {"policy", policy_label},
                           {"streams", std::to_string(n)},
                           {"shards", std::to_string(shards)},
                           {"history", use_history ? "on" : "off"}},
                          *summary);
    }
  }
  json.write_if_requested(options);

  // Determinism probe: the acceptance bar for stream experiments is
  // bit-identical per-workflow makespans under a fixed seed — and, with
  // --history, a byte-identical merged history fingerprint (at shards>1
  // this exercises the per-shard delta sinks and their barrier merge).
  // Reuse the main loop's result as the first run.
  const std::size_t probe_index = streams.size() > 1 ? 1 : 0;
  const std::size_t probe = streams[probe_index];
  const exp::StreamCaseResult& a = results[probe_index];
  const exp::StreamCaseResult b = exp::run_stream_case(make_spec(probe));
  const auto history_identical = [](const exp::StreamStrategySummary& x,
                                    const exp::StreamStrategySummary& y) {
    return x.history_observations == y.history_observations &&
           x.history_estimates == y.history_estimates;
  };
  const bool deterministic = a.heft.makespans == b.heft.makespans &&
                             a.aheft.makespans == b.aheft.makespans &&
                             a.minmin.makespans == b.minmin.makespans &&
                             a.heft.waits == b.heft.waits &&
                             a.aheft.waits == b.aheft.waits &&
                             a.minmin.waits == b.minmin.waits &&
                             history_identical(a.heft, b.heft) &&
                             history_identical(a.aheft, b.aheft) &&
                             history_identical(a.minmin, b.minmin);
  std::cout << "determinism probe (" << probe << " workflows, re-run): "
            << (deterministic ? "bit-identical per-workflow makespans"
                              : "MISMATCH");
  if (use_history) {
    std::cout << " (history fingerprint "
              << (history_identical(a.aheft, b.aheft) ? "identical"
                                                      : "MISMATCH")
              << ", " << a.aheft.history_observations
              << " AHEFT observations)";
  }
  std::cout << "\n";
  return deterministic ? 0 : 1;
}
