// EXP-A3 — ablation on resource failures (ours): the paper's experiments
// only add resources (§4.1 assumption 3), but its architecture claims
// rescheduling doubles as the fault-tolerance mechanism. Here resources
// *leave* mid-run: the planner is notified (predictable failure), forcibly
// reschedules, and running jobs on the lost machine restart elsewhere.
#include <iostream>

#include "bench_util.h"
#include "core/heft.h"
#include "core/strategy.h"
#include "support/rng.h"
#include "workloads/random_dag.h"
#include "workloads/scenario.h"

using namespace aheft;

int main(int argc, char** argv) {
  const bench::BenchOptions options = bench::parse_options(argc, argv);
  std::size_t repeats = options.scale == Scale::kSmoke ? 2 : 10;
  if (options.scale == Scale::kPaper) {
    repeats = 50;
  }
  bench::print_header("Ablation — resource failures", options, repeats * 4);

  AsciiTable table({"failures", "avg makespan", "slowdown vs fault-free",
                    "avg forced adoptions", "avg restarts"});
  OnlineStats reference;
  for (const std::size_t failures : {0u, 1u, 2u, 4u}) {
    OnlineStats makespan;
    OnlineStats adoptions;
    OnlineStats restarts;
    for (std::size_t i = 0; i < repeats; ++i) {
      const std::uint64_t seed = mix64(options.seed, 1000 + i);
      RngStream rng(seed);
      workloads::RandomDagParams params;
      params.jobs = 60;
      params.ccr = 1.0;
      params.out_degree = 0.3;
      RngStream dag_stream = rng.child("dag");
      const workloads::Workload w =
          workloads::generate_random_workload(params, dag_stream);

      grid::ResourcePool pool;
      constexpr std::size_t kResources = 10;
      for (std::size_t r = 0; r < kResources; ++r) {
        pool.add(grid::Resource{});
      }
      const grid::MachineModel model = workloads::build_machine_model(
          w, kResources, 0.5, mix64(seed, 5));
      const double heft_makespan =
          core::heft_schedule(w.dag, model, pool).makespan();

      // Fail `failures` distinct resources at random times in the middle
      // half of the fault-free plan. Departures are announced (the window
      // is in the pool), so the planner schedules around and reacts.
      RngStream failure_stream = rng.child("failures");
      std::vector<grid::ResourceId> victims(kResources);
      for (std::size_t r = 0; r < kResources; ++r) {
        victims[r] = static_cast<grid::ResourceId>(r);
      }
      failure_stream.shuffle(victims);
      for (std::size_t f = 0; f < failures; ++f) {
        pool.set_departure(
            victims[f],
            heft_makespan * failure_stream.uniform(0.25, 0.75));
      }

      core::SessionEnvironment env;
      env.pool = &pool;
      const core::StrategyOutcome outcome = core::run_strategy(
          core::StrategyKind::kAdaptiveAheft, w.dag, model, model, env);
      makespan.add(outcome.makespan);
      adoptions.add(static_cast<double>(outcome.adoptions));
      restarts.add(static_cast<double>(outcome.restarts));
    }
    if (failures == 0) {
      reference = makespan;
    }
    table.add_row({std::to_string(failures),
                   format_double(makespan.mean(), 0),
                   format_double(makespan.mean() / reference.mean(), 2),
                   format_double(adoptions.mean(), 2),
                   format_double(restarts.mean(), 2)});
  }
  std::cout << table.to_string() << "\n"
            << "Reading: because departures are announced (advance\n"
               "reservation windows), the planner schedules around them and\n"
               "forcibly replans at each loss — predictable failures cost\n"
               "almost nothing, exactly the benefit §3.3 claims for\n"
               "rescheduling as the fault-tolerance mechanism.\n";
  return 0;
}
