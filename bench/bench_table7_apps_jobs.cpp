// EXP-T7 — paper Table 7: improvement rate by degree of parallelism.
// Published: BLAST 15.9/18.3/19.9/21.9/23.6 %, WIEN2K 2.2/4.3/6.0/7.8/9.4 %
// for N = 200..1000 — improvement grows with DAG complexity for both.
#include <iostream>

#include "bench_util.h"
#include "exp/paper_ref.h"

using namespace aheft;

int main(int argc, char** argv) {
  const bench::BenchOptions options = bench::parse_options(argc, argv);

  AsciiTable table({"N", "blast impr.", "paper", "wien2k impr.", "paper"});
  std::map<double, double> blast_rows;
  std::map<double, double> wien_rows;
  for (const exp::AppKind app :
       {exp::AppKind::kBlast, exp::AppKind::kWien2k}) {
    std::vector<exp::CaseSpec> specs =
        exp::build_app_sweep(app, options.scale, options.seed);
    bench::print_header(
        "Table 7 — " + exp::to_string(app) + " improvement vs parallelism",
        options, specs.size());
    const exp::SweepOutcome outcome = bench::run(options, std::move(specs));
    const auto groups = exp::group_by(outcome, [](const exp::CaseSpec& s) {
      return static_cast<double>(s.size);
    });
    for (const auto& [n, stats] : groups) {
      (app == exp::AppKind::kBlast ? blast_rows : wien_rows)[n] =
          stats.improvement();
    }
  }
  std::size_t row = 0;
  for (const auto& [n, blast_improvement] : blast_rows) {
    const std::string paper_blast =
        row < exp::paper::kTable7Blast.size()
            ? format_percent(exp::paper::kTable7Blast[row])
            : "-";
    const std::string paper_wien =
        row < exp::paper::kTable7Wien2k.size()
            ? format_percent(exp::paper::kTable7Wien2k[row])
            : "-";
    table.add_row({format_double(n, 0), format_percent(blast_improvement),
                   paper_blast,
                   wien_rows.count(n) ? format_percent(wien_rows[n]) : "-",
                   paper_wien});
    ++row;
  }
  std::cout << table.to_string() << "\n"
            << "Expected shape: improvement grows with N for both "
               "applications.\n";
  return 0;
}
