// Shared scaffolding for the table/figure reproduction benches.
//
// Every bench accepts:
//   --scale=smoke|default|paper   (or $AHEFT_SCALE; default: default)
//   --threads=N                   (0 = hardware concurrency)
//   --seed=N                      (master seed, default 42)
//   --csv=path                    (optional per-case dump)
//   --scenario-source=NAME        (grid environment backend; default keeps
//                                  each sweep's own setting, usually
//                                  "synthetic")
//   --trace=path                  (trace file for --scenario-source=trace)
//   --archive=path                (SWF/GWA log for
//                                  --scenario-source=archive|fitted)
//   --help                        (lists the flags plus every registered
//                                  scenario source and contention policy)
//   --contention-policy=NAME      (cross-workflow machine arbitration for
//                                  stream benches: fcfs, priority,
//                                  fair-share, or a custom registration)
//   --backfill                    (session-level ledger backfilling for
//                                  stream benches; changes grants, so it
//                                  is never the default)
//   --contention-aware            (planning passes fit into the session
//                                  ledger's availability snapshot; off by
//                                  default so the contention-blind plans
//                                  stay bit-stable across PRs)
//   --json=path                   (structured per-configuration results —
//                                  every row's makespan/wait/jain at full
//                                  double precision — so CI can archive
//                                  the perf trajectory machine-readably)
// and prints measured values side by side with the paper's published
// numbers. Default scale keeps each bench in the seconds-to-minutes range;
// paper scale replays the full published grids.
#ifndef AHEFT_BENCH_BENCH_UTIL_H_
#define AHEFT_BENCH_BENCH_UTIL_H_

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "core/contention_policy.h"
#include "core/strategy.h"
#include "exp/report.h"
#include "exp/runner.h"
#include "exp/sweeps.h"
#include "support/env.h"
#include "support/stopwatch.h"
#include "support/table.h"
#include "traces/scenario_source.h"

namespace aheft::bench {

struct BenchOptions {
  Scale scale = Scale::kDefault;
  std::size_t threads = 0;
  std::uint64_t seed = 42;
  std::string csv;
  /// Overrides every spec's scenario source when non-empty.
  std::string scenario_source;
  std::string trace_path;
  /// SWF/GWA log for the "archive"/"fitted" scenario sources.
  std::string archive_path;
  /// Overrides every spec's contention policy when non-empty.
  std::string contention_policy;
  /// Enables session-level ledger backfilling on every spec.
  bool backfill = false;
  /// Enables contention-aware planning on every spec.
  bool contention_aware = false;
  /// Structured JSON results path (empty: no JSON output).
  std::string json;
};

/// Prints the shared flag reference plus the live backend registries —
/// scenario sources with their descriptions and contention policies —
/// so `--help` always reflects what is actually registered.
inline void print_help(const char* program) {
  std::cout
      << "usage: " << program << " [options]\n\n"
      << "  --scale=smoke|default|paper  sweep size (or $AHEFT_SCALE)\n"
      << "  --threads=N                  worker threads (0 = hardware)\n"
      << "  --seed=N                     master seed (default 42)\n"
      << "  --csv=path                   per-case CSV dump\n"
      << "  --json=path                  structured JSON results\n"
      << "  --scenario-source=NAME       grid environment backend\n"
      << "  --trace=path                 trace file (scenario source "
         "'trace')\n"
      << "  --archive=path               SWF/GWA log (scenario sources "
         "'archive' and 'fitted')\n"
      << "  --contention-policy=NAME     cross-workflow arbitration\n"
      << "  --backfill                   session-level ledger backfilling\n"
      << "  --contention-aware           contention-aware planning\n"
      << "  --strategy=NAME              strategy under test (benches that\n"
      << "                               take one; see the list below)\n"
      << "  --streams=a,b,c              stream-concurrency axis (stream\n"
      << "                               benches)\n"
      << "  --shards=a,b,c               parallel-simulation shard axis\n"
      << "                               (benches that sweep it; 1 = the\n"
      << "                               serial event loop)\n"
      << "  --epoch-width=a,b,c          fixed epoch-width axis for the\n"
      << "                               sharded kernel's tick barriers\n"
      << "                               (benches that sweep it; 0 = a\n"
      << "                               barrier per distinct event time)\n"
      << "  --help                       this message\n\n"
      << "strategies:\n ";
  for (const std::string& name : core::strategy_names()) {
    std::cout << ' ' << name;
  }
  std::cout << "\n\nscenario sources:\n";
  const auto& sources = traces::ScenarioSourceRegistry::instance();
  for (const std::string& name : sources.names()) {
    std::cout << "  " << name;
    for (std::size_t pad = name.size(); pad < 12; ++pad) {
      std::cout << ' ';
    }
    std::cout << sources.require(name).description() << "\n";
  }
  std::cout << "\ncontention policies:\n ";
  for (const std::string& name :
       core::ContentionPolicyRegistry::instance().names()) {
    std::cout << ' ' << name;
  }
  // Passthrough pointer, --version style: the determinism rules these
  // benches' byte-for-byte self-checks rely on are enforced statically
  // by the in-tree linter; `detlint --list-rules` documents them the
  // same way this help documents the bench axes.
  std::cout << "\n\nstatic analysis:\n"
            << "  the determinism & concurrency rules this bench's "
               "bit-identical\n"
            << "  self-checks depend on are enforced by tools/detlint "
               "(build target\n"
            << "  `detlint`); run `detlint --list-rules` for the rule "
               "table and\n"
            << "  README \"Static analysis\" for the suppression "
               "grammar.\n";
}

inline BenchOptions parse_options(int argc, char** argv) {
  const ArgParser args(argc, argv);
  if (args.has("help")) {
    print_help(argc > 0 ? argv[0] : "bench");
    std::exit(0);
  }
  BenchOptions options;
  options.scale = args.scale();
  options.threads =
      static_cast<std::size_t>(args.get_int("threads", 0));
  options.seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
  options.csv = args.get("csv", "");
  options.scenario_source = args.get("scenario-source", "");
  options.trace_path = args.get("trace", "");
  options.archive_path = args.get("archive", "");
  options.contention_policy = args.get("contention-policy", "");
  if (!options.scenario_source.empty()) {
    // Same eager validation as --contention-policy below: an unknown
    // backend (or a missing --trace/--archive) should fail with a usage
    // message, not escape as an exception from the first case.
    try {
      std::vector<exp::CaseSpec> probe(1);
      exp::set_scenario_source(probe, options.scenario_source,
                               options.trace_path, options.archive_path);
    } catch (const std::invalid_argument& error) {
      std::cerr << "--scenario-source: " << error.what() << "\n";
      std::exit(2);
    }
  }
  options.backfill = args.has("backfill");
  options.contention_aware = args.has("contention-aware");
  options.json = args.get("json", "");
  if (!options.contention_policy.empty()) {
    // Fail at parse time with a usage message — an unknown name would
    // otherwise escape as an exception from the first session mid-run.
    try {
      (void)core::ContentionPolicyRegistry::instance().create(
          options.contention_policy);
    } catch (const std::invalid_argument& error) {
      std::cerr << "--contention-policy: " << error.what() << "\n";
      std::exit(2);
    }
  }
  return options;
}

/// Parses --<flag>=a,b,c (positive integers) into a sweep axis; returns
/// `fallback` when the flag is absent and exits with a usage message on
/// malformed input. Behind parse_streams and parse_shards.
inline std::vector<std::size_t> parse_size_axis(
    const ArgParser& args, const std::string& flag,
    std::vector<std::size_t> fallback, const char* example) {
  if (!args.has(flag)) {
    return fallback;
  }
  std::vector<std::size_t> values;
  std::stringstream in(args.get(flag, ""));
  std::string token;
  while (std::getline(in, token, ',')) {
    // All-digits only: std::stoul alone would wrap negatives to huge
    // values and silently ignore trailing junk ("3abc").
    try {
      if (token.empty() ||
          token.find_first_not_of("0123456789") != std::string::npos) {
        throw std::invalid_argument("not a positive integer");
      }
      const unsigned long value = std::stoul(token);
      if (value == 0) {
        throw std::invalid_argument("zero");
      }
      values.push_back(static_cast<std::size_t>(value));
    } catch (const std::exception&) {
      std::cerr << "bad --" << flag << " token '" << token
                << "' (want positive integers, e.g. --" << flag << "="
                << example << ")\n";
      std::exit(2);
    }
  }
  if (values.empty()) {
    std::cerr << "--" << flag << " needs at least one positive integer\n";
    std::exit(2);
  }
  return values;
}

/// Parses --streams=a,b,c, the stream-bench concurrency axis.
inline std::vector<std::size_t> parse_streams(
    const ArgParser& args, std::vector<std::size_t> fallback) {
  return parse_size_axis(args, "streams", std::move(fallback), "1,4,16");
}

/// Parses --shards=a,b,c, the parallel-simulation shard axis
/// (SessionEnvironment::shards; 1 is the serial event loop).
inline std::vector<std::size_t> parse_shards(
    const ArgParser& args, std::vector<std::size_t> fallback) {
  return parse_size_axis(args, "shards", std::move(fallback), "1,8");
}

/// Parses --epoch-width=a,b,c (non-negative reals) — the fixed epoch
/// width axis for benches that sweep the sharded kernel's barrier
/// spacing. Returns `fallback` when absent; exits with a usage message
/// on malformed input.
inline std::vector<double> parse_epoch_widths(const ArgParser& args,
                                              std::vector<double> fallback) {
  if (!args.has("epoch-width")) {
    return fallback;
  }
  std::vector<double> values;
  std::stringstream in(args.get("epoch-width", ""));
  std::string token;
  while (std::getline(in, token, ',')) {
    try {
      std::size_t consumed = 0;
      const double value = std::stod(token, &consumed);
      if (token.empty() || consumed != token.size() || value < 0.0 ||
          !std::isfinite(value)) {
        throw std::invalid_argument("not a non-negative real");
      }
      values.push_back(value);
    } catch (const std::exception&) {
      std::cerr << "bad --epoch-width token '" << token
                << "' (want non-negative reals, e.g. --epoch-width=0,0.5,2)"
                << "\n";
      std::exit(2);
    }
  }
  if (values.empty()) {
    std::cerr << "--epoch-width needs at least one non-negative real\n";
    std::exit(2);
  }
  return values;
}

/// Resolves --strategy=heft|aheft|dynamic through the canonical
/// core::strategy_from_string round-trip (so every bench agrees on the
/// names); exits with a usage message on an unknown value.
inline core::StrategyKind parse_strategy(const ArgParser& args,
                                         core::StrategyKind fallback) {
  const std::string text = args.get("strategy", "");
  if (text.empty()) {
    return fallback;
  }
  if (const auto kind = core::strategy_from_string(text)) {
    return *kind;
  }
  // Mirror the unknown --scenario-source / --contention-policy style:
  // the error names every value that actually parses, from the same
  // canonical list --help prints.
  std::cerr << "unknown --strategy '" << text << "' (registered strategies:";
  for (const std::string& name : core::strategy_names()) {
    std::cerr << ' ' << name;
  }
  std::cerr << ")\n";
  std::exit(2);
}

/// Structured results sink behind --json: one JSON object per bench run
/// with one row per measured configuration. Labels are the configuration
/// axes (policy, strategy, streams, ...); metrics carry full double
/// precision so the perf trajectory stays diffable across commits
/// without table-rounding noise.
class JsonReport {
 public:
  JsonReport(std::string bench, const BenchOptions& options)
      : bench_(std::move(bench)),
        scale_(to_string(options.scale)),
        seed_(options.seed) {}

  using Labels = std::vector<std::pair<std::string, std::string>>;
  using Metrics = std::vector<std::pair<std::string, double>>;

  void add_row(Labels labels, Metrics metrics) {
    rows_.push_back(Row{std::move(labels), std::move(metrics)});
  }

  /// The standard stream-summary metric set every stream bench reports.
  void add_stream_row(Labels labels,
                      const exp::StreamStrategySummary& summary) {
    add_row(std::move(labels),
            Metrics{{"mean_makespan", summary.mean_makespan},
                    {"max_makespan", summary.max_makespan},
                    {"mean_slowdown", summary.mean_slowdown},
                    {"max_slowdown", summary.max_slowdown},
                    {"mean_wait", summary.mean_wait},
                    {"max_wait", summary.max_wait},
                    {"jain_fairness", summary.jain_fairness},
                    {"throughput", summary.throughput},
                    {"span", summary.span},
                    {"adoptions", static_cast<double>(summary.adoptions)},
                    {"restarts", static_cast<double>(summary.restarts)}});
  }

  /// Writes the report to `path`; exits with a message when the file
  /// cannot be written (CI must notice a missing artifact).
  void write(const std::string& path) const {
    std::ofstream out(path);
    if (!out) {
      std::cerr << "--json: cannot write " << path << "\n";
      std::exit(2);
    }
    out << "{\n  \"bench\": " << quoted(bench_) << ",\n  \"scale\": "
        << quoted(scale_) << ",\n  \"seed\": " << seed_
        << ",\n  \"rows\": [";
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      out << (i == 0 ? "\n" : ",\n") << "    {\"labels\": {";
      const Row& row = rows_[i];
      for (std::size_t j = 0; j < row.labels.size(); ++j) {
        out << (j == 0 ? "" : ", ") << quoted(row.labels[j].first) << ": "
            << quoted(row.labels[j].second);
      }
      out << "}, \"metrics\": {";
      out << std::setprecision(17);
      for (std::size_t j = 0; j < row.metrics.size(); ++j) {
        out << (j == 0 ? "" : ", ") << quoted(row.metrics[j].first) << ": "
            << row.metrics[j].second;
      }
      out << "}}";
    }
    out << "\n  ]\n}\n";
    std::cout << "structured results written to " << path << "\n";
  }

  /// Writes to options.json when --json was given; no-op otherwise.
  void write_if_requested(const BenchOptions& options) const {
    if (!options.json.empty()) {
      write(options.json);
    }
  }

 private:
  struct Row {
    Labels labels;
    Metrics metrics;
  };

  static std::string quoted(const std::string& text) {
    std::string result = "\"";
    for (const char c : text) {
      if (c == '"' || c == '\\') {
        result += '\\';
      }
      result += c;
    }
    result += '"';
    return result;
  }

  std::string bench_;
  std::string scale_;
  std::uint64_t seed_;
  std::vector<Row> rows_;
};

/// Applies the shared environment overrides (--scenario-source with its
/// --trace / --archive companions) to one spec. The sweep-style benches
/// get this through run() below; the stream benches build their specs
/// one at a time and must route each through here, or the advertised
/// flag would be validated and then silently ignored.
inline exp::CaseSpec with_cli_environment(exp::CaseSpec spec,
                                          const BenchOptions& options) {
  if (!options.scenario_source.empty()) {
    std::vector<exp::CaseSpec> one;
    one.push_back(std::move(spec));
    exp::set_scenario_source(one, options.scenario_source,
                             options.trace_path, options.archive_path);
    spec = std::move(one.front());
  }
  return spec;
}

inline void print_header(const std::string& title,
                         const BenchOptions& options, std::size_t cases) {
  std::cout << "=== " << title << " ===\n"
            << "scale=" << to_string(options.scale) << " seed=" << options.seed
            << " cases=" << cases << "\n\n";
}

/// Runs the sweep with progress reporting and optional CSV dump. When
/// --scenario-source was given, it overrides every spec's environment
/// backend first (the sweep's scenario-source axis).
inline exp::SweepOutcome run(const BenchOptions& options,
                             std::vector<exp::CaseSpec> specs) {
  if (!options.scenario_source.empty()) {
    exp::set_scenario_source(specs, options.scenario_source,
                             options.trace_path, options.archive_path);
  }
  if (!options.contention_policy.empty()) {
    exp::set_contention_policy(specs, options.contention_policy);
  }
  if (options.backfill) {
    exp::set_backfill(specs, true);
  }
  if (options.contention_aware) {
    exp::set_contention_aware(specs, true);
  }
  Stopwatch watch;
  exp::SweepOutcome outcome =
      exp::run_sweep(std::move(specs), options.threads, /*progress=*/true);
  std::cout << "ran " << outcome.results.size() << " cases in "
            << format_double(watch.seconds(), 1) << "s\n\n";
  if (!options.csv.empty()) {
    exp::dump_csv(outcome, options.csv);
    std::cout << "per-case results written to " << options.csv << "\n\n";
  }
  return outcome;
}

}  // namespace aheft::bench

#endif  // AHEFT_BENCH_BENCH_UTIL_H_
