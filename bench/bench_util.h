// Shared scaffolding for the table/figure reproduction benches.
//
// Every bench accepts:
//   --scale=smoke|default|paper   (or $AHEFT_SCALE; default: default)
//   --threads=N                   (0 = hardware concurrency)
//   --seed=N                      (master seed, default 42)
//   --csv=path                    (optional per-case dump)
//   --scenario-source=NAME        (grid environment backend; default keeps
//                                  each sweep's own setting, usually
//                                  "synthetic")
//   --trace=path                  (trace file for --scenario-source=trace)
// and prints measured values side by side with the paper's published
// numbers. Default scale keeps each bench in the seconds-to-minutes range;
// paper scale replays the full published grids.
#ifndef AHEFT_BENCH_BENCH_UTIL_H_
#define AHEFT_BENCH_BENCH_UTIL_H_

#include <cstdint>
#include <iostream>
#include <string>

#include "exp/report.h"
#include "exp/runner.h"
#include "exp/sweeps.h"
#include "support/env.h"
#include "support/stopwatch.h"
#include "support/table.h"

namespace aheft::bench {

struct BenchOptions {
  Scale scale = Scale::kDefault;
  std::size_t threads = 0;
  std::uint64_t seed = 42;
  std::string csv;
  /// Overrides every spec's scenario source when non-empty.
  std::string scenario_source;
  std::string trace_path;
};

inline BenchOptions parse_options(int argc, char** argv) {
  const ArgParser args(argc, argv);
  BenchOptions options;
  options.scale = args.scale();
  options.threads =
      static_cast<std::size_t>(args.get_int("threads", 0));
  options.seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
  options.csv = args.get("csv", "");
  options.scenario_source = args.get("scenario-source", "");
  options.trace_path = args.get("trace", "");
  return options;
}

inline void print_header(const std::string& title,
                         const BenchOptions& options, std::size_t cases) {
  std::cout << "=== " << title << " ===\n"
            << "scale=" << to_string(options.scale) << " seed=" << options.seed
            << " cases=" << cases << "\n\n";
}

/// Runs the sweep with progress reporting and optional CSV dump. When
/// --scenario-source was given, it overrides every spec's environment
/// backend first (the sweep's scenario-source axis).
inline exp::SweepOutcome run(const BenchOptions& options,
                             std::vector<exp::CaseSpec> specs) {
  if (!options.scenario_source.empty()) {
    exp::set_scenario_source(specs, options.scenario_source,
                             options.trace_path);
  }
  Stopwatch watch;
  exp::SweepOutcome outcome =
      exp::run_sweep(std::move(specs), options.threads, /*progress=*/true);
  std::cout << "ran " << outcome.results.size() << " cases in "
            << format_double(watch.seconds(), 1) << "s\n\n";
  if (!options.csv.empty()) {
    exp::dump_csv(outcome, options.csv);
    std::cout << "per-case results written to " << options.csv << "\n\n";
  }
  return outcome;
}

}  // namespace aheft::bench

#endif  // AHEFT_BENCH_BENCH_UTIL_H_
