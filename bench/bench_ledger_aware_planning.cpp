// EXP-S3 — contention-aware planning under multi-DAG workflow streams.
//
// PR 4's ResourceLedger gave the session one per-machine reservation
// timeline, but planning passes kept estimating against an empty grid:
// in a contended stream every HEFT/AHEFT plan was systematically
// optimistic — it piled the workflows onto the same few machines and let
// FCFS serialization absorb the error. With contention-aware planning
// (PlannerConfig::contention_aware) every pass snapshots the ledger into
// an AvailabilityView and fits its EST searches into the view's free
// gaps, so plans route around competitors that already hold the machines
// and re-evaluations react to competitors arriving and finishing.
//
// This bench prices that difference. For 4 and 16 concurrent workflow
// instances (bursty arrivals, volatile pool, FCFS arbitration) it runs
// the same stream three ways over one identical environment and setup:
//
//   aheft-blind   adaptive AHEFT, ledger-invisible planning (PR 4),
//   aheft-view    adaptive AHEFT planning against the ledger snapshot,
//   dynamic       the just-in-time Min-Min baseline (already ledger-
//                 arbitrated per decision; its release-time greedy-EFT
//                 scale prices the same view under --contention-aware).
//
// The closing self-check asserts the tentpole's contract at the largest
// stream: AHEFT-with-view must strictly improve the max slowdown over
// ledger-blind AHEFT (the workflow hurt worst by contention gains the
// most from plans that respect the reservation timelines).
//
// Extra knobs: --smoke, --streams=a,b,c,
// --contention-policy=fcfs|priority|fair-share, --backfill, --json=path
// (per-mode slowdown/wait/restart rows at full precision, uploaded by CI
// into the BENCH_stream.json artifact).
#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.h"

using namespace aheft;

namespace {

exp::CaseSpec stream_spec(Scale scale, std::uint64_t master,
                          std::size_t stream_jobs,
                          const bench::BenchOptions& options) {
  exp::CaseSpec spec;
  spec.app = exp::AppKind::kRandom;
  spec.size = scale == Scale::kSmoke ? 20 : 40;
  spec.ccr = 1.0;
  spec.out_degree = 0.25;
  spec.dynamics = {8, 300.0, 0.2};
  spec.scenario_source = "bursty";
  spec.bursty.mean_calm = 400.0;
  spec.bursty.mean_burst = 120.0;
  spec.bursty.calm_arrival_mean = 500.0;
  spec.bursty.burst_arrival_mean = 60.0;
  spec.react_to_variance = true;  // load spikes trigger re-planning too
  spec.horizon_factor = 4.0;
  spec.stream_jobs = stream_jobs;
  // Tight arrivals: plans only benefit from the ledger picture when
  // several workflows genuinely overlap on the same machines.
  spec.stream_interarrival = 60.0;
  if (!options.contention_policy.empty()) {
    spec.contention_policy = options.contention_policy;
  }
  spec.backfill = options.backfill;
  spec.seed = exp::case_seed(master, spec, /*instance=*/stream_jobs);
  return spec;
}

struct ModeRow {
  std::string mode;
  exp::StreamStrategySummary summary;
};

}  // namespace

int main(int argc, char** argv) {
  bench::BenchOptions options = bench::parse_options(argc, argv);
  const ArgParser args(argc, argv);
  if (args.has("smoke")) {
    options.scale = Scale::kSmoke;
  }

  const std::vector<std::size_t> streams = bench::parse_streams(args, {4, 16});

  bench::print_header(
      "Contention-aware planning: AHEFT with ledger view vs blind vs dynamic",
      options, streams.size() * 3);
  bench::JsonReport report("bench_ledger_aware_planning", options);

  bool contract_checked = false;
  bool contract_ok = true;
  for (const std::size_t n : streams) {
    // One environment and one materialized setup per stream size: the
    // modes differ only in how the strategies plan, never in the grid,
    // the DAGs, or the cost matrices they plan over.
    const exp::CaseSpec blind = bench::with_cli_environment(
        stream_spec(options.scale, options.seed, n, options), options);
    exp::CaseSpec aware = blind;
    aware.contention_aware = true;
    const exp::CaseEnvironment env = exp::build_case_environment(blind);
    const exp::StreamSetup setup = exp::build_stream_setup(blind, env);

    std::vector<ModeRow> rows;
    rows.push_back(ModeRow{
        "aheft-blind",
        exp::run_stream_strategy(blind, env, setup,
                                 core::StrategyKind::kAdaptiveAheft)});
    rows.push_back(ModeRow{
        "aheft-view",
        exp::run_stream_strategy(aware, env, setup,
                                 core::StrategyKind::kAdaptiveAheft)});
    rows.push_back(ModeRow{
        "dynamic",
        exp::run_stream_strategy(
            options.contention_aware ? aware : blind, env, setup,
            core::StrategyKind::kDynamic)});

    AsciiTable table({"mode", "mean slowdown", "max slowdown", "mean wait",
                      "max wait", "restarts", "jain", "throughput/1k"});
    for (const ModeRow& row : rows) {
      const exp::StreamStrategySummary& s = row.summary;
      table.add_row({row.mode, format_double(s.mean_slowdown, 2),
                     format_double(s.max_slowdown, 2),
                     format_double(s.mean_wait, 1),
                     format_double(s.max_wait, 1),
                     std::to_string(s.restarts),
                     format_double(s.jain_fairness, 3),
                     format_double(s.throughput * 1000.0, 3)});
      report.add_stream_row(
          {{"mode", row.mode}, {"streams", std::to_string(n)}}, s);
    }
    std::cout << n << " concurrent workflow(s), " << setup.instances.size()
              << " instances, " << env.scenario.pool.universe_size()
              << " machines in the universe:\n"
              << table.to_string() << "\n";

    // The tentpole's contract, asserted at the most contended stream:
    // plans that respect the ledger must strictly improve the worst
    // per-workflow slowdown over ledger-blind plans.
    if (n == *std::max_element(streams.begin(), streams.end()) && n > 1) {
      const exp::StreamStrategySummary& blind_sum = rows[0].summary;
      const exp::StreamStrategySummary& view_sum = rows[1].summary;
      contract_checked = true;
      contract_ok = view_sum.max_slowdown < blind_sum.max_slowdown;
      std::cout << "contention-aware self-check (" << n << " workflows): "
                << "aheft-view max slowdown "
                << format_double(view_sum.max_slowdown, 4) << " vs blind "
                << format_double(blind_sum.max_slowdown, 4) << ", restarts "
                << view_sum.restarts << " vs " << blind_sum.restarts
                << " -> " << (contract_ok ? "PASS" : "FAIL") << "\n";
    }
  }
  report.write_if_requested(options);
  return contract_checked && !contract_ok ? 1 : 0;
}
