// EXP-T3 — paper Table 3: AHEFT improvement rate over HEFT by CCR on the
// random-DAG grid. Published: 0.4%, 0.5%, 0.7%, 3.2%, 7.7% for
// CCR = 0.1, 0.5, 1, 5, 10 — data-intensive workflows benefit most.
#include <iostream>

#include "bench_util.h"
#include "exp/paper_params.h"
#include "exp/paper_ref.h"

using namespace aheft;

int main(int argc, char** argv) {
  const bench::BenchOptions options = bench::parse_options(argc, argv);
  std::vector<exp::CaseSpec> specs =
      exp::build_random_sweep(options.scale, options.seed,
                              /*run_dynamic=*/false);
  bench::print_header("Table 3 — improvement rate vs CCR (random DAGs)",
                      options, specs.size());
  const exp::SweepOutcome outcome = bench::run(options, std::move(specs));
  const auto groups =
      exp::group_by(outcome, [](const exp::CaseSpec& s) { return s.ccr; });

  AsciiTable table({"CCR", "avg HEFT", "avg AHEFT", "improvement",
                    "paper"});
  std::size_t row = 0;
  for (const auto& [ccr, stats] : groups) {
    const std::string paper =
        row < exp::paper::kTable3Improvement.size()
            ? format_percent(exp::paper::kTable3Improvement[row])
            : "-";
    table.add_row({format_double(ccr, 1), format_double(stats.heft.mean(), 0),
                   format_double(stats.aheft.mean(), 0),
                   format_percent(stats.improvement()), paper});
    ++row;
  }
  std::cout << table.to_string() << "\n"
            << "Expected shape: improvement grows with CCR.\n";
  return 0;
}
