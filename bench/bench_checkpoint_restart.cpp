// EXP-R1 — resilience under correlated failure bursts: reject vs
// restart-from-scratch vs Daly checkpointing, plus fair-share preemption.
//
// The bursty scenario source can fail machines in correlated groups
// (failure_fraction) while load spikes stretch running jobs past the
// doomed machines' departure walls — exactly the corner the engine
// historically rejected as unsupported. This bench runs the same
// multi-DAG stream under three departure policies:
//
//   reject    DepartureAction::kFail — a job caught by a departing
//             machine fails its whole workflow (the "reject the run"
//             baseline expressed as data),
//   scratch   DepartureAction::kRequeue with checkpointing disabled —
//             the job runs to the wall, loses everything, and restarts
//             from zero elsewhere,
//   daly      kRequeue plus the Daly checkpoint model — the interrupted
//             job keeps its checkpointed floor progress and restarts
//             from the latest image (paying the read cost).
//
// The closing self-check asserts the resilience contract at the most
// contended stream: Daly checkpointing must strictly improve goodput
// (useful / (useful + lost + overhead) machine-seconds) over
// restart-from-scratch, and both requeue modes must strictly beat the
// reject baseline on completed workflows.
//
// A second section demonstrates fair-share preemption on a monopolizing
// stream (few machines, long jobs, tight arrivals): a starved workflow
// whose stretch clears the deadband may revoke the committed window
// blocking it. The self-check asserts preemption strictly reduces the
// max slowdown versus the same non-preempting fair-share configuration.
//
// Extra knobs: --smoke, --streams=a,b,c, --strategy=heft|aheft|dynamic
// (default aheft), --json=path (per-mode resilience ledgers at full
// precision, uploaded by CI inside the BENCH_stream.json artifact).
#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "resilience/checkpoint_model.h"

using namespace aheft;

namespace {

/// The failure-burst stream: a volatile pool where every burst fails a
/// correlated third of the live machines and spikes the load on half of
/// the survivors, so plans vetted against nominal costs keep getting
/// caught at departure walls.
exp::CaseSpec burst_spec(Scale scale, std::uint64_t master,
                         std::size_t stream_jobs) {
  exp::CaseSpec spec;
  spec.app = exp::AppKind::kRandom;
  spec.size = scale == Scale::kSmoke ? 20 : 40;
  spec.ccr = 1.0;
  spec.out_degree = 0.25;
  spec.dynamics = {8, 300.0, 0.2};
  spec.scenario_source = "bursty";
  spec.bursty.mean_calm = 300.0;
  spec.bursty.mean_burst = 150.0;
  spec.bursty.calm_arrival_mean = 500.0;
  spec.bursty.burst_arrival_mean = 80.0;
  spec.bursty.spike_fraction = 0.5;
  spec.bursty.spike_min = 2.0;
  spec.bursty.spike_max = 4.0;
  spec.bursty.failure_fraction = 0.45;
  spec.bursty.repair_mean = 250.0;
  spec.react_to_variance = true;
  spec.horizon_factor = 6.0;
  spec.stream_jobs = stream_jobs;
  spec.stream_interarrival = scale == Scale::kSmoke ? 60.0 : 100.0;
  spec.seed = exp::case_seed(master, spec, /*instance=*/stream_jobs);
  return spec;
}

/// The monopolizing stream for the preemption section: a small static
/// pool, long jobs, and arrivals tight enough that early workflows pin
/// every machine while late arrivals starve behind committed windows —
/// the delay held claims alone cannot repair.
exp::CaseSpec monopoly_spec(Scale scale, std::uint64_t master,
                            std::size_t stream_jobs) {
  exp::CaseSpec spec;
  spec.app = exp::AppKind::kRandom;
  spec.size = scale == Scale::kSmoke ? 20 : 30;
  spec.ccr = 0.5;
  spec.out_degree = 0.3;
  spec.dynamics = {4, 1e9, 0.0};  // four machines, never changing
  spec.horizon_factor = 6.0;
  spec.stream_jobs = stream_jobs;
  spec.stream_interarrival = 40.0;
  spec.contention_policy = "fair-share";
  spec.seed = exp::case_seed(master, spec, /*instance=*/stream_jobs);
  return spec;
}

resilience::ResilienceConfig reject_config() {
  resilience::ResilienceConfig config;
  config.departure_action = resilience::DepartureAction::kFail;
  return config;
}

resilience::ResilienceConfig scratch_config() {
  resilience::ResilienceConfig config;
  config.departure_action = resilience::DepartureAction::kRequeue;
  return config;
}

resilience::ResilienceConfig daly_config() {
  resilience::ResilienceConfig config;
  config.departure_action = resilience::DepartureAction::kRequeue;
  config.checkpoint.enabled = true;
  // Jobs average 100 nominal work units; a half-unit image write against
  // a 250-unit per-job MTBF puts Daly's optimum interval near 16 units,
  // so a typical run completes several cheap checkpoints and an
  // interruption forfeits at most one short cycle.
  config.checkpoint.write_cost = 0.5;
  config.checkpoint.read_cost = 0.5;
  config.checkpoint.mtbf = 250.0;
  return config;
}

struct ModeRow {
  std::string mode;
  exp::StreamStrategySummary summary;
};

void add_resilience_row(bench::JsonReport& report,
                        bench::JsonReport::Labels labels,
                        const exp::StreamStrategySummary& s) {
  report.add_row(
      std::move(labels),
      bench::JsonReport::Metrics{
          {"completed", static_cast<double>(s.completed_workflows)},
          {"failed", static_cast<double>(s.failed_workflows)},
          {"revoked_jobs", static_cast<double>(s.revoked_jobs)},
          {"useful_work", s.useful_work},
          {"lost_work", s.lost_work},
          {"checkpoint_overhead", s.checkpoint_overhead},
          {"goodput", s.goodput},
          {"mean_slowdown", s.mean_slowdown},
          {"max_slowdown", s.max_slowdown},
          {"throughput", s.throughput},
          {"span", s.span}});
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchOptions options = bench::parse_options(argc, argv);
  const ArgParser args(argc, argv);
  if (args.has("smoke")) {
    options.scale = Scale::kSmoke;
  }
  const core::StrategyKind strategy =
      bench::parse_strategy(args, core::StrategyKind::kAdaptiveAheft);
  const std::vector<std::size_t> streams =
      bench::parse_streams(args, {4, 16});

  bench::print_header("Checkpoint/restart under failure bursts (" +
                          core::to_string(strategy) + ")",
                      options, streams.size() * 3 + 2);
  bench::JsonReport report("bench_checkpoint_restart", options);

  bool resilience_checked = false;
  bool resilience_ok = true;
  for (const std::size_t n : streams) {
    std::vector<ModeRow> rows;
    for (const auto& [mode, config] :
         {std::pair<const char*, resilience::ResilienceConfig>{
              "reject", reject_config()},
          {"scratch", scratch_config()},
          {"daly", daly_config()}}) {
      exp::CaseSpec spec = bench::with_cli_environment(
          burst_spec(options.scale, options.seed, n), options);
      spec.resilience = config;
      spec.backfill = options.backfill;
      spec.contention_aware = options.contention_aware;
      if (!options.contention_policy.empty()) {
        spec.contention_policy = options.contention_policy;
      }
      const exp::CaseEnvironment env = exp::build_case_environment(spec);
      const exp::StreamSetup setup = exp::build_stream_setup(spec, env);
      rows.push_back(
          ModeRow{mode, exp::run_stream_strategy(spec, env, setup, strategy)});
      add_resilience_row(report,
                         {{"section", "checkpoint"},
                          {"strategy", core::to_string(strategy)},
                          {"mode", rows.back().mode},
                          {"streams", std::to_string(n)}},
                         rows.back().summary);
    }

    AsciiTable table({"mode", "completed", "failed", "revoked jobs",
                      "goodput", "lost work", "ckpt overhead",
                      "mean slowdown", "throughput/1k"});
    for (const ModeRow& row : rows) {
      const exp::StreamStrategySummary& s = row.summary;
      table.add_row({row.mode, std::to_string(s.completed_workflows),
                     std::to_string(s.failed_workflows),
                     std::to_string(s.revoked_jobs),
                     format_double(s.goodput, 4),
                     format_double(s.lost_work, 0),
                     format_double(s.checkpoint_overhead, 0),
                     format_double(s.mean_slowdown, 2),
                     format_double(s.throughput * 1000.0, 3)});
    }
    std::cout << n << " concurrent workflow(s):\n"
              << table.to_string() << "\n";

    if (n == *std::max_element(streams.begin(), streams.end()) && n > 1) {
      const exp::StreamStrategySummary& reject = rows[0].summary;
      const exp::StreamStrategySummary& scratch = rows[1].summary;
      const exp::StreamStrategySummary& daly = rows[2].summary;
      resilience_checked = true;
      const bool goodput_ok = daly.goodput > scratch.goodput;
      const bool completed_ok =
          scratch.completed_workflows > reject.completed_workflows &&
          daly.completed_workflows > reject.completed_workflows;
      resilience_ok = goodput_ok && completed_ok;
      std::cout << "resilience self-check (" << n << " workflows, "
                << core::to_string(strategy) << "): daly goodput "
                << format_double(daly.goodput, 4) << " vs scratch "
                << format_double(scratch.goodput, 4) << ", completed "
                << daly.completed_workflows << "/"
                << scratch.completed_workflows << " vs reject "
                << reject.completed_workflows << " -> "
                << (resilience_ok ? "PASS" : "FAIL") << "\n\n";
    }
  }

  // ---- fair-share preemption on a monopolizing stream ----------------
  const std::size_t monopoly_streams = 12;
  std::vector<ModeRow> preempt_rows;
  for (const bool preemption : {false, true}) {
    exp::CaseSpec spec = bench::with_cli_environment(
        monopoly_spec(options.scale, options.seed, monopoly_streams),
        options);
    spec.resilience = daly_config();
    spec.resilience.preemption = preemption;
    spec.backfill = options.backfill;
    spec.contention_aware = options.contention_aware;
    const exp::CaseEnvironment env = exp::build_case_environment(spec);
    const exp::StreamSetup setup = exp::build_stream_setup(spec, env);
    preempt_rows.push_back(
        ModeRow{preemption ? "fair-share + preemption" : "fair-share",
                exp::run_stream_strategy(spec, env, setup, strategy)});
    add_resilience_row(report,
                       {{"section", "preemption"},
                        {"strategy", core::to_string(strategy)},
                        {"mode", preemption ? "preempt" : "base"},
                        {"streams", std::to_string(monopoly_streams)}},
                       preempt_rows.back().summary);
  }

  AsciiTable preempt_table({"policy", "mean slowdown", "max slowdown",
                            "revoked jobs", "goodput", "jain"});
  for (const ModeRow& row : preempt_rows) {
    const exp::StreamStrategySummary& s = row.summary;
    preempt_table.add_row({row.mode, format_double(s.mean_slowdown, 2),
                           format_double(s.max_slowdown, 2),
                           std::to_string(s.revoked_jobs),
                           format_double(s.goodput, 4),
                           format_double(s.jain_fairness, 3)});
  }
  std::cout << "monopolizing stream (" << monopoly_streams
            << " workflows, 4 machines):\n"
            << preempt_table.to_string() << "\n";

  const exp::StreamStrategySummary& base = preempt_rows[0].summary;
  const exp::StreamStrategySummary& preempt = preempt_rows[1].summary;
  const bool preemption_ok = preempt.max_slowdown < base.max_slowdown;
  std::cout << "preemption self-check: max slowdown "
            << format_double(preempt.max_slowdown, 4)
            << " (preempting) vs " << format_double(base.max_slowdown, 4)
            << " (non-preempting) -> " << (preemption_ok ? "PASS" : "FAIL")
            << "\n";

  report.write_if_requested(options);
  if ((resilience_checked && !resilience_ok) || !preemption_ok) {
    return 1;
  }
  return 0;
}
