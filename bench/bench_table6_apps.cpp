// EXP-T6 — paper Table 6: average makespan and improvement rate by AHEFT
// on the two real applications.
// Published: BLAST 4939.3 -> 3933.1 (20.4%); WIEN2K 3451.6 -> 3233.8
// (6.3%). The headline: the wide, balanced BLAST gains far more than the
// LAPW2_FERMI-gated WIEN2K.
#include <iostream>

#include "bench_util.h"
#include "exp/paper_ref.h"

using namespace aheft;

int main(int argc, char** argv) {
  const bench::BenchOptions options = bench::parse_options(argc, argv);

  AsciiTable table({"application", "avg HEFT", "avg AHEFT", "improvement",
                    "paper HEFT", "paper AHEFT", "paper impr."});
  for (const exp::AppKind app :
       {exp::AppKind::kBlast, exp::AppKind::kWien2k}) {
    std::vector<exp::CaseSpec> specs =
        exp::build_app_sweep(app, options.scale, options.seed);
    bench::print_header(
        "Table 6 — " + exp::to_string(app) + " average makespan", options,
        specs.size());
    const exp::SweepOutcome outcome = bench::run(options, std::move(specs));
    const exp::GroupStats stats = exp::overall(outcome);
    const bool blast = app == exp::AppKind::kBlast;
    table.add_row(
        {exp::to_string(app), format_double(stats.heft.mean(), 1),
         format_double(stats.aheft.mean(), 1),
         format_percent(stats.improvement()),
         format_double(blast ? exp::paper::kBlastHeft
                             : exp::paper::kWien2kHeft,
                       1),
         format_double(blast ? exp::paper::kBlastAheft
                             : exp::paper::kWien2kAheft,
                       1),
         format_percent(blast ? exp::paper::kBlastImprovement
                              : exp::paper::kWien2kImprovement)});
  }
  std::cout << table.to_string() << "\n"
            << "Expected shape: BLAST improvement >> WIEN2K improvement.\n";
  return 0;
}
