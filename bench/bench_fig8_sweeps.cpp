// EXP-F8 — paper Fig. 8(a)–(f): average makespan of HEFT and AHEFT on
// BLAST (HEFT1/AHEFT1) and WIEN2K (HEFT2/AHEFT2) as one parameter sweeps
// while the rest sit at the central base configuration.
//
// Published trends: (a) makespan grows with CCR, AHEFT gap widens;
// (b) flat in beta; (c) grows with job count; (d) shrinks with initial
// pool size, AHEFT gap largest for small pools; (e) AHEFT gap shrinks as
// the change interval grows; (f) weak sensitivity to the change fraction.
#include <iostream>

#include "bench_util.h"

using namespace aheft;

int main(int argc, char** argv) {
  const bench::BenchOptions options = bench::parse_options(argc, argv);

  const std::pair<exp::SweepAxis, const char*> panels[] = {
      {exp::SweepAxis::kCcr, "(a) makespan vs CCR"},
      {exp::SweepAxis::kBeta, "(b) makespan vs beta"},
      {exp::SweepAxis::kJobs, "(c) makespan vs number of jobs (N)"},
      {exp::SweepAxis::kPool, "(d) makespan vs initial resource pool"},
      {exp::SweepAxis::kInterval, "(e) makespan vs resource change interval"},
      {exp::SweepAxis::kFraction,
       "(f) makespan vs resource change percentage"},
  };

  for (const auto& [axis, title] : panels) {
    AsciiTable table({to_string(axis), "HEFT1 (blast)", "AHEFT1 (blast)",
                      "HEFT2 (wien2k)", "AHEFT2 (wien2k)"});
    std::map<double, std::pair<exp::GroupStats, exp::GroupStats>> rows;
    for (const exp::AppKind app :
         {exp::AppKind::kBlast, exp::AppKind::kWien2k}) {
      std::vector<exp::CaseSpec> specs =
          exp::build_fig8_sweep(app, axis, options.scale, options.seed);
      bench::print_header(std::string("Fig. 8") + title + " — " +
                              exp::to_string(app),
                          options, specs.size());
      const exp::SweepOutcome outcome =
          bench::run(options, std::move(specs));
      const auto groups =
          exp::group_by(outcome, [axis](const exp::CaseSpec& s) {
            return exp::axis_value(axis, s);
          });
      for (const auto& [value, stats] : groups) {
        if (app == exp::AppKind::kBlast) {
          rows[value].first = stats;
        } else {
          rows[value].second = stats;
        }
      }
    }
    for (const auto& [value, stats] : rows) {
      table.add_row({format_double(value, 2),
                     format_double(stats.first.heft.mean(), 0),
                     format_double(stats.first.aheft.mean(), 0),
                     format_double(stats.second.heft.mean(), 0),
                     format_double(stats.second.aheft.mean(), 0)});
    }
    std::cout << "Fig. 8" << title << ":\n" << table.to_string() << "\n";
  }
  return 0;
}
