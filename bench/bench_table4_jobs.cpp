// EXP-T4 — paper Table 4: AHEFT improvement rate over HEFT by DAG size on
// the random grid. Published: 2.9%, 3.9%, 4.3%, 4.2%, 4.1% for
// v = 20..100 — a jump from 20 to 40 jobs, then a plateau.
#include <iostream>

#include "bench_util.h"
#include "exp/paper_ref.h"

using namespace aheft;

int main(int argc, char** argv) {
  const bench::BenchOptions options = bench::parse_options(argc, argv);
  std::vector<exp::CaseSpec> specs =
      exp::build_random_sweep(options.scale, options.seed,
                              /*run_dynamic=*/false);
  bench::print_header("Table 4 — improvement rate vs job count (random DAGs)",
                      options, specs.size());
  const exp::SweepOutcome outcome = bench::run(options, std::move(specs));
  const auto groups = exp::group_by(outcome, [](const exp::CaseSpec& s) {
    return static_cast<double>(s.size);
  });

  AsciiTable table({"jobs", "avg HEFT", "avg AHEFT", "improvement",
                    "paper"});
  std::size_t row = 0;
  for (const auto& [jobs, stats] : groups) {
    const std::string paper =
        row < exp::paper::kTable4Improvement.size()
            ? format_percent(exp::paper::kTable4Improvement[row])
            : "-";
    table.add_row({format_double(jobs, 0), format_double(stats.heft.mean(), 0),
                   format_double(stats.aheft.mean(), 0),
                   format_percent(stats.improvement()), paper});
    ++row;
  }
  std::cout << table.to_string() << "\n"
            << "Expected shape: improvement rises initially, then "
               "stabilizes.\n";
  return 0;
}
